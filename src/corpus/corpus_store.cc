#include "corpus/corpus_store.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "corpus/serde.hh"
#include "runtime/fault.hh"

namespace fs = std::filesystem;

namespace amulet::corpus
{

namespace
{

std::string
metaPath(const std::string &dir)
{
    return (fs::path(dir) / "meta.json").string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CorpusError("cannot read " + path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Result of scanning a journal file. */
struct JournalScan
{
    /** Byte length of the valid prefix (everything parseable). */
    std::uintmax_t validBytes = 0;
    /** True when the valid prefix ends with a line terminator. */
    bool terminated = true;
};

/**
 * Walk journal lines, calling @p per_line for each parsed document. A
 * hard kill can leave one torn (partially flushed) final line; journal
 * readers tolerate it — previously confirmed records must stay
 * reachable — by stopping at the valid prefix instead of throwing. A
 * final line that parses but lacks its '\n' is valid data with a torn
 * terminator (reported via `terminated`). Corruption anywhere *before*
 * the final line is real damage and does throw, with file:line context.
 */
template <typename PerLine>
JournalScan
walkJournal(const std::string &path, PerLine per_line)
{
    JournalScan scan;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return scan; // no journal yet: empty corpus
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::size_t pos = 0;
    std::size_t lineno = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            text.substr(pos, complete ? nl - pos : std::string::npos);
        ++lineno;
        if (!line.empty()) {
            try {
                per_line(Json::parse(line));
            } catch (const CorpusError &e) {
                // A torn write is exactly an unterminated final line
                // (the '\n' is the last byte of a complete append); a
                // *terminated* bad line is real corruption.
                if (!complete)
                    return scan; // valid prefix ends before the torn tail
                throw CorpusError(path + ":" + std::to_string(lineno) +
                                  ": " + e.what());
            }
        }
        if (!complete) {
            scan.validBytes = text.size();
            scan.terminated = false;
            break;
        }
        pos = nl + 1;
        scan.validBytes = pos;
    }
    return scan;
}

/** True for a v3 `"kind":"quarantine"` journal line (record lines
 *  carry no "kind" member). */
bool
isQuarantineLine(const Json &json)
{
    const Json *kind = json.find("kind");
    return kind && kind->asStr() == "quarantine";
}

/** Dedup key straight off a parsed journal line — no full record
 *  deserialization (no program re-assembly, no context decoding), so
 *  opening a store stays cheap on corpora grown over many runs. */
std::string
keyFromJson(const Json &json)
{
    if (isQuarantineLine(json))
        return "q/" + std::to_string(json.at("programIndex").asU64());
    std::ostringstream os;
    os << json.at("programIndex").asU64() << "/"
       << json.at("inputA").at("id").asU64() << "/"
       << json.at("inputB").at("id").asU64() << "/"
       << json.at("signature").asStr();
    return os.str();
}

bool
isQuarantineKey(const std::string &key)
{
    return key.size() >= 2 && key[0] == 'q' && key[1] == '/';
}

} // namespace

CorpusStore::CorpusStore(std::string dir,
                         const core::CampaignConfig &config)
    : dir_(std::move(dir)), fingerprint_(configFingerprint(config))
{
    fs::create_directories(dir_);
    const std::string meta_path = metaPath(dir_);
    if (fs::exists(meta_path)) {
        const Json meta = Json::parse(readFile(meta_path));
        const std::string existing = meta.at("fingerprint").asStr();
        if (existing != fingerprint_) {
            throw CorpusError(
                "corpus at " + dir_ + " was built by a different campaign "
                "config (fingerprint " + existing + ", this campaign is " +
                fingerprint_ + ")");
        }
    } else {
        Json meta = Json::object();
        meta.set("version", Json::number(std::uint64_t{kFormatVersion}));
        meta.set("fingerprint", Json::str(fingerprint_));
        meta.set("config", configToJson(config));
        std::ofstream out(meta_path, std::ios::binary);
        out << meta.dump() << "\n";
        if (!out)
            throw CorpusError("cannot write " + meta_path);
    }

    // Seed the dedup index from whatever a previous run journaled, and
    // repair a torn tail (partially flushed final line from a hard
    // kill) by truncating to the valid prefix — appending after a torn
    // fragment would otherwise poison the next record's line.
    const JournalScan scan = walkJournal(
        journalPath(), [this](const Json &j) { index_.insert(keyFromJson(j)); });
    for (const std::string &key : index_)
        if (!isQuarantineKey(key))
            ++count_;
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(journalPath(), ec);
    if (!ec && size > scan.validBytes) {
        fs::resize_file(journalPath(), scan.validBytes, ec);
        // Appending after an un-truncated fragment would fuse it with
        // the next record into a *terminated* corrupt line — permanent
        // damage instead of a tolerated torn tail. Refuse to open.
        if (ec) {
            throw CorpusError("cannot truncate torn journal tail in " +
                              dir_ + ": " + ec.message());
        }
    }

    journal_ = std::fopen(journalPath().c_str(), "ab");
    if (!journal_)
        throw CorpusError("cannot open journal in " + dir_);
    validBytes_ = scan.validBytes;
    if (scan.validBytes > 0 && !scan.terminated) {
        std::fputc('\n', journal_); // re-terminate a valid torn tail
        ++validBytes_;
    }
}

CorpusStore::~CorpusStore()
{
    if (journal_)
        std::fclose(journal_);
}

std::string
CorpusStore::journalPath() const
{
    return (fs::path(dir_) / "journal.jsonl").string();
}

std::string
CorpusStore::recordKey(const core::ViolationRecord &record)
{
    std::ostringstream os;
    os << record.programIndex << "/" << record.inputA.id << "/"
       << record.inputB.id << "/" << record.signature;
    return os.str();
}

bool
CorpusStore::append(const core::ViolationRecord &record)
{
    if (appendLine(toJson(record).dump(), recordKey(record),
                   record.programIndex)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++count_;
        return true;
    }
    return false;
}

bool
CorpusStore::appendQuarantine(unsigned programIndex,
                              const std::string &reason)
{
    Json j = Json::object();
    j.set("kind", Json::str("quarantine"));
    j.set("version", Json::number(std::uint64_t{kFormatVersion}));
    j.set("programIndex", Json::number(std::uint64_t{programIndex}));
    j.set("reason", Json::str(reason));
    // Quarantine lines are exempt from the injected-ENOSPC chaos site:
    // they are the containment of a fault, and faulting the containment
    // itself is the campaign-abort path, not a survivable one.
    return appendLine(j.dump(), "q/" + std::to_string(programIndex),
                      kNoFaultKey);
}

bool
CorpusStore::appendLine(const std::string &line, const std::string &key,
                        std::uint64_t faultProgram)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_)
        throw CorpusError("journal in " + dir_ +
                          " is disabled after an unhealable append "
                          "failure");
    if (!index_.insert(key).second)
        return false;
    // Deterministic chaos site (src/runtime/fault.hh): tear the write —
    // half the line reaches the disk, then the device reports ENOSPC —
    // exercising exactly the short-write path a full disk produces.
    if (faultProgram != kNoFaultKey) {
        if (const auto *plan = runtime::fault::FaultPlan::active()) {
            if (plan->journalAppendFault(faultProgram)) {
                std::fwrite(line.data(), 1, line.size() / 2, journal_);
                std::fflush(journal_);
                index_.erase(key);
                healTornAppend();
                throw CorpusError("journal append failed in " + dir_ +
                                  " (injected ENOSPC)");
            }
        }
    }
    // Flush per record: the journal must already hold everything a
    // checkpoint can claim as completed when the process dies. An I/O
    // failure (disk full, error) must not let the index/checkpoint
    // claim durability the journal does not have.
    const bool ok =
        std::fwrite(line.data(), 1, line.size(), journal_) ==
            line.size() &&
        std::fputc('\n', journal_) != EOF &&
        std::fflush(journal_) == 0;
    if (!ok) {
        index_.erase(key);
        healTornAppend();
        throw CorpusError("journal append failed in " + dir_ +
                          " (disk full?)");
    }
    validBytes_ += line.size() + 1;
    return true;
}

void
CorpusStore::healTornAppend()
{
    // A failed append may have left a torn fragment past the last good
    // line. Truncate back so the *next* append cannot fuse with the
    // fragment into a terminated — permanently corrupt — line; the
    // store then survives a transient ENOSPC at the cost of the one
    // record (whose program stays unreported and is re-run). If even
    // the truncate fails, poison the store: refusing later appends is
    // recoverable (reopen repairs the tail), silent corruption is not.
    std::fflush(journal_);
    clearerr(journal_);
    if (ftruncate(fileno(journal_), static_cast<off_t>(validBytes_)) != 0)
        broken_ = true;
}

std::size_t
CorpusStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

void
CorpusStore::writeMetrics(const std::string &json)
{
    const std::string path = (fs::path(dir_) / "metrics.json").string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << json << "\n";
    if (!out)
        throw CorpusError("cannot write " + path);
}

std::string
CorpusStore::readMetricsText(const std::string &dir)
{
    const std::string path = (fs::path(dir) / "metrics.json").string();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

core::CampaignConfig
CorpusStore::readConfig(const std::string &dir)
{
    const Json meta = Json::parse(readFile(metaPath(dir)));
    const unsigned version = meta.at("version").asUnsigned();
    if (version != kFormatVersion) {
        throw CorpusError("corpus format version " +
                          std::to_string(version) + " unsupported");
    }
    return configFromJson(meta.at("config"));
}

std::vector<core::ViolationRecord>
CorpusStore::readJournal(const std::string &dir)
{
    std::vector<core::ViolationRecord> records;
    std::set<std::string> keys;
    walkJournal((fs::path(dir) / "journal.jsonl").string(),
                [&](const Json &j) {
                    if (isQuarantineLine(j))
                        return; // facts, not records: see readQuarantined
                    core::ViolationRecord rec = recordFromJson(j);
                    if (keys.insert(recordKey(rec)).second)
                        records.push_back(std::move(rec));
                });
    return records;
}

std::vector<CorpusStore::QuarantineEntry>
CorpusStore::readQuarantined(const std::string &dir)
{
    std::map<unsigned, std::string> by_program;
    walkJournal((fs::path(dir) / "journal.jsonl").string(),
                [&](const Json &j) {
                    if (!isQuarantineLine(j))
                        return;
                    const unsigned version = j.at("version").asUnsigned();
                    if (version != kFormatVersion) {
                        throw CorpusError(
                            "quarantine line version " +
                            std::to_string(version) + " unsupported");
                    }
                    by_program.emplace(
                        static_cast<unsigned>(
                            j.at("programIndex").asU64()),
                        j.at("reason").asStr());
                });
    std::vector<QuarantineEntry> entries;
    entries.reserve(by_program.size());
    for (auto &[program, reason] : by_program)
        entries.push_back({program, std::move(reason)});
    return entries;
}

std::string
CorpusStore::exportCanonical(const std::string &dir)
{
    return exportCanonical(dir, readJournal(dir));
}

std::string
CorpusStore::exportCanonical(const std::string &dir,
                             std::vector<core::ViolationRecord> records)
{
    const Json meta = Json::parse(readFile(metaPath(dir)));
    std::sort(records.begin(), records.end(),
              [](const core::ViolationRecord &a,
                 const core::ViolationRecord &b) {
                  return recordKey(a) < recordKey(b);
              });

    Json header = Json::object();
    header.set("type", Json::str("corpus-export"));
    header.set("version", Json::number(std::uint64_t{kFormatVersion}));
    header.set("fingerprint", meta.at("fingerprint"));
    header.set("records", Json::number(std::uint64_t{records.size()}));

    std::string out = header.dump() + "\n";
    for (core::ViolationRecord &rec : records) {
        // detectSeconds is the only wall-clock field in a record; zero
        // it so exports are byte-identical across jobs/kill/resume.
        rec.detectSeconds = 0;
        out += toJson(rec).dump() + "\n";
    }
    return out;
}

std::size_t
CorpusStore::mergeInto(const std::string &dst_dir,
                       const std::vector<std::string> &src_dirs)
{
    if (src_dirs.empty())
        throw CorpusError("merge: no source corpora given");
    CorpusStore dst(dst_dir, readConfig(src_dirs.front()));
    std::size_t appended = 0;
    for (const std::string &src : src_dirs) {
        // The store constructor pinned dst's fingerprint; verify each
        // source against it before touching its journal.
        const std::string src_fp =
            configFingerprint(readConfig(src));
        if (src_fp != dst.fingerprint_) {
            throw CorpusError("merge: " + src +
                              " has fingerprint " + src_fp +
                              ", expected " + dst.fingerprint_);
        }
        for (const core::ViolationRecord &rec : readJournal(src)) {
            if (dst.append(rec))
                ++appended;
        }
        // Quarantine facts travel with a shard's journal: the merged
        // corpus must know which programs never produced results.
        for (const QuarantineEntry &q : readQuarantined(src))
            dst.appendQuarantine(q.programIndex, q.reason);
    }
    return appended;
}

} // namespace amulet::corpus

#include "corpus/checkpoint.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "corpus/serde.hh"
#include "runtime/fault.hh"

namespace fs = std::filesystem;

namespace amulet::corpus
{

namespace
{

std::string
checkpointPath(const std::string &dir)
{
    return (fs::path(dir) / "checkpoint.json").string();
}

} // namespace

void
writeCheckpoint(const std::string &dir, const core::CampaignConfig &config,
                const CompletedOutcomes &completed)
{
    Json j = Json::object();
    j.set("version", Json::number(std::uint64_t{kFormatVersion}));
    // The fingerprint covers the whole campaign definition (including
    // numPrograms), so no further identity fields are needed here.
    j.set("fingerprint", Json::str(configFingerprint(config)));
    Json outcomes = Json::array();
    for (const auto &[index, outcome] : completed) {
        Json entry = Json::object();
        entry.set("programIndex", Json::number(std::uint64_t{index}));
        entry.set("outcome", outcomeToJson(outcome));
        outcomes.push(std::move(entry));
    }
    j.set("outcomes", std::move(outcomes));

    const std::string path = checkpointPath(dir);
    const std::string tmp = path + ".tmp";
    // Deterministic chaos site (src/runtime/fault.hh): fail the write
    // inside the crash window the tmp+rename dance protects against — a
    // torn tmp file and no rename. The previous checkpoint must stay
    // intact and the campaign must keep running (the scheduler treats a
    // failed checkpoint write as lost progress-markers, not lost data).
    if (const auto *plan = runtime::fault::FaultPlan::active()) {
        if (plan->fires("checkpoint.fail",
                        plan->occurrence("checkpoint.fail"))) {
            const std::string dump = j.dump();
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            out << dump.substr(0, dump.size() / 2);
            throw CorpusError("cannot write " + tmp +
                              " (injected ENOSPC)");
        }
    }
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << j.dump() << "\n";
        out.flush();
        if (!out)
            throw CorpusError("cannot write " + tmp);
    }
    // Atomic within one filesystem: a reader sees the old checkpoint or
    // the new one, never a torn file.
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        throw CorpusError("cannot rename " + tmp + ": " + ec.message());
}

CompletedOutcomes
loadCheckpoint(const std::string &dir, const core::CampaignConfig &config)
{
    CompletedOutcomes completed;
    const std::string path = checkpointPath(dir);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return completed; // no checkpoint yet: resume from scratch

    std::ostringstream os;
    os << in.rdbuf();
    const Json j = Json::parse(os.str());
    const unsigned version = j.at("version").asUnsigned();
    if (version != kFormatVersion) {
        throw CorpusError("checkpoint version " + std::to_string(version) +
                          " unsupported");
    }
    const std::string fingerprint = configFingerprint(config);
    if (j.at("fingerprint").asStr() != fingerprint) {
        throw CorpusError("checkpoint in " + dir +
                          " belongs to a different campaign config");
    }
    for (const Json &entry : j.at("outcomes").items()) {
        const unsigned index = entry.at("programIndex").asUnsigned();
        if (index >= config.numPrograms)
            throw CorpusError("checkpoint program index out of range");
        completed[index] = outcomeFromJson(entry.at("outcome"));
    }
    return completed;
}

} // namespace amulet::corpus

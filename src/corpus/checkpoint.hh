/**
 * @file
 * Campaign checkpoints: resume an interrupted campaign mid-stream.
 *
 * A checkpoint is the merged sink state of every *completed* program —
 * counters, signature counts, format tallies, and that program's
 * violation records — keyed by program index. On resume the scheduler
 * preloads these outcomes into the ViolationSink and only runs the
 * missing indices; because a program's outcome is a pure function of
 * (config, program index, RNG stream) and streams are pre-split in
 * program order, the merged result equals an uninterrupted run on every
 * deterministic field (the jobs-invariant determinism contract extends
 * to kill/resume — see src/corpus/README.md).
 *
 * Writes are atomic (temp file + rename) and always ordered after the
 * journal appends of the programs they cover, so a checkpoint never
 * claims a program whose records the journal is missing.
 */

#ifndef AMULET_CORPUS_CHECKPOINT_HH
#define AMULET_CORPUS_CHECKPOINT_HH

#include <map>
#include <string>

#include "core/campaign.hh"
#include "runtime/violation_sink.hh"

namespace amulet::corpus
{

/** Completed outcomes keyed by program index. */
using CompletedOutcomes = std::map<unsigned, runtime::ProgramOutcome>;

/**
 * Atomically (re)write checkpoint.json in @p dir with the outcomes of
 * all completed programs of campaign @p config.
 */
void writeCheckpoint(const std::string &dir,
                     const core::CampaignConfig &config,
                     const CompletedOutcomes &completed);

/**
 * Load the checkpoint in @p dir, or an empty map when none exists.
 * Throws CorpusError when the checkpoint belongs to a different campaign
 * config fingerprint (resuming someone else's campaign would silently
 * corrupt results).
 */
CompletedOutcomes loadCheckpoint(const std::string &dir,
                                 const core::CampaignConfig &config);

} // namespace amulet::corpus

#endif // AMULET_CORPUS_CHECKPOINT_HH

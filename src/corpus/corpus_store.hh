/**
 * @file
 * Per-campaign corpus store: an append-only violation journal plus a
 * signature/record index.
 *
 * Layout of one campaign directory:
 *
 *     meta.json      — format version + campaign config + fingerprint
 *     journal.jsonl  — one confirmed ViolationRecord per line, appended
 *                      (and flushed) the moment the sink confirms it
 *     checkpoint.json — periodic resume state (see checkpoint.hh)
 *     metrics.json   — the run's merged telemetry registry (counters,
 *                      timers, latency percentiles, top spans). A
 *                      runtime artifact like the checkpoint: not part
 *                      of the fingerprint, never exported, overwritten
 *                      per run (campaign_cli stats renders it).
 *
 * The journal is append-only and flushed per record, so a killed
 * campaign keeps every violation confirmed before the kill. The
 * in-memory index dedups by record key across runs: a resumed campaign
 * re-runs unfinished programs, deterministically re-derives the same
 * records, and the duplicate appends are dropped. The same index makes
 * journals from independent shards mergeable (mergeInto), which is the
 * transport for the distributed-shards follow-on: ship program ranges
 * out, ship journals back, merge.
 */

#ifndef AMULET_CORPUS_CORPUS_STORE_HH
#define AMULET_CORPUS_CORPUS_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/violation.hh"

namespace amulet::corpus
{

/** One campaign's on-disk corpus. */
class CorpusStore
{
  public:
    /**
     * Open (creating the directory and meta.json as needed) the corpus
     * at @p dir for campaign @p config. An existing corpus must carry
     * the same config fingerprint; on mismatch this throws CorpusError —
     * mixing campaign definitions in one journal would poison replay.
     * Existing journal records are loaded into the dedup index.
     */
    CorpusStore(std::string dir, const core::CampaignConfig &config);

    ~CorpusStore();

    CorpusStore(const CorpusStore &) = delete;
    CorpusStore &operator=(const CorpusStore &) = delete;

    /**
     * Append one confirmed record to the journal (thread-safe, flushed
     * before returning). Returns false when the dedup index already
     * holds the record's key — e.g. a resumed program re-deriving a
     * violation the killed run had journaled.
     *
     * On an append failure (short write/ENOSPC, injected or real) the
     * store throws CorpusError *after* self-healing: the journal is
     * truncated back to its last known-good byte length, so the torn
     * fragment cannot fuse with a later append into a terminated —
     * i.e. permanently corrupt — line. A transient disk error costs
     * one record (whose program stays unreported and is re-leased),
     * never the journal.
     */
    bool append(const core::ViolationRecord &record);

    /**
     * Journal a quarantined program (`"kind":"quarantine"` line, v3):
     * its executor exhausted recovery, so it has no records, but the
     * fact must survive kills — resume skips quarantined programs and
     * `campaign_cli quarantined` lists them. Deduped per program.
     * Quarantine lines are invisible to readJournal/exportCanonical:
     * exports cover exactly the non-quarantined programs' records.
     */
    bool appendQuarantine(unsigned programIndex, const std::string &reason);

    /** Records currently journaled (journal order; quarantine lines
     *  excluded). */
    std::size_t size() const;

    /**
     * Overwrite metrics.json with @p json (one telemetry-registry
     * document, see telemetry::metricsJson). Runtime observability
     * only — not fingerprinted, not exported, latest run wins.
     */
    void writeMetrics(const std::string &json);

    /** Raw metrics.json text of the corpus at @p dir ("" if none). */
    static std::string readMetricsText(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * Dedup key: (programIndex, inputA, inputB, signature). Identical
     * for re-derived records because program outcomes are pure functions
     * of (config, program index, RNG stream).
     */
    static std::string recordKey(const core::ViolationRecord &record);

    /** @name Reading a corpus back */
    /// @{
    /** Campaign config stored in meta.json. */
    static core::CampaignConfig readConfig(const std::string &dir);

    /** All journaled records, in journal (append) order; deduped.
     *  Quarantine lines are skipped. */
    static std::vector<core::ViolationRecord>
    readJournal(const std::string &dir);

    /** One journaled quarantine fact. */
    struct QuarantineEntry
    {
        unsigned programIndex = 0;
        std::string reason;
    };

    /** All journaled quarantine lines, deduped by program, in program
     *  order. */
    static std::vector<QuarantineEntry>
    readQuarantined(const std::string &dir);

    /**
     * Canonical export: records sorted by key with the wall-clock
     * detectSeconds field zeroed, one JSON document per line, preceded
     * by a header line. Byte-identical for every run of the same
     * (config, seed) regardless of jobs, kills, and resumes — the
     * property scripts/verify.sh and tests/test_corpus.cc enforce.
     * The second form reuses already-loaded journal records so callers
     * that also list them (campaign_cli export) parse the journal once.
     */
    static std::string exportCanonical(const std::string &dir);
    static std::string
    exportCanonical(const std::string &dir,
                    std::vector<core::ViolationRecord> records);
    /// @}

    /**
     * Merge the journals of @p src_dirs into the corpus at @p dst_dir
     * (created if missing, config taken from the first source). All
     * sources must share one config fingerprint. Returns the number of
     * newly appended (non-duplicate) records.
     */
    static std::size_t mergeInto(const std::string &dst_dir,
                                 const std::vector<std::string> &src_dirs);

  private:
    std::string journalPath() const;

    /** Locked append of one pre-rendered journal line under @p key.
     *  @p faultProgram keys the injected-ENOSPC chaos site (pass
     *  kNoFaultKey to exempt the line, e.g. quarantine facts). */
    bool appendLine(const std::string &line, const std::string &key,
                    std::uint64_t faultProgram);

    /** Truncate the journal back to validBytes_ after a failed append
     *  (call with mu_ held). Sets broken_ when even that fails. */
    void healTornAppend();

    static constexpr std::uint64_t kNoFaultKey = ~std::uint64_t(0);

    mutable std::mutex mu_;
    std::string dir_;
    std::string fingerprint_;
    std::set<std::string> index_;
    std::size_t count_ = 0;
    std::FILE *journal_ = nullptr;
    /** Journal byte length known to hold only complete lines. */
    std::uintmax_t validBytes_ = 0;
    /** A failed append could not be healed; further appends refuse
     *  rather than risk fusing lines into permanent corruption. */
    bool broken_ = false;
};

} // namespace amulet::corpus

#endif // AMULET_CORPUS_CORPUS_STORE_HH

/**
 * @file
 * Versioned JSON serialization for the violation corpus (§3.3).
 *
 * Everything a violation needs to be re-derived offline is expressible
 * as JSON: the record itself (program as disassembly, input pair, μarch
 * traces, predictor contexts, RNG stream state) and the campaign
 * configuration that produced it. Programs are stored as paper-style
 * listings and reparsed through the assembler on load, so a corpus stays
 * human-readable and the assembler↔disassembler round trip is the
 * load-bearing invariant (tested over generator output in test_isa).
 *
 * The Json value type below is deliberately tiny: objects keep insertion
 * order and numbers are stored as text, so serialization is canonical —
 * equal values produce byte-equal dumps, which is what corpus exports
 * and config fingerprints are built on.
 */

#ifndef AMULET_CORPUS_SERDE_HH
#define AMULET_CORPUS_SERDE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "arch/input.hh"
#include "common/rng.hh"
#include "core/campaign.hh"
#include "core/violation.hh"
#include "executor/sim_harness.hh"
#include "executor/uarch_trace.hh"
#include "runtime/violation_sink.hh"

namespace amulet::corpus
{

/** Corpus format version; bumped on any incompatible schema change.
 *  v2: CampaignConfig::filterIneffective joins the campaign definition
 *  (and thus the fingerprint); ProgramOutcome carries the filtering
 *  counters (skippedProgram, filteredTestCases, filterSec).
 *  v3: the journal gains a `"kind":"quarantine"` record kind (programs
 *  whose executor exhausted recovery) and ProgramOutcome carries the
 *  quarantined/quarantineReason fields in checkpoints. */
inline constexpr unsigned kFormatVersion = 3;

/** Thrown on malformed or incompatible corpus data. */
class CorpusError : public std::runtime_error
{
  public:
    explicit CorpusError(const std::string &msg) : std::runtime_error(msg)
    {}
};

/** Minimal JSON value: null, bool, number, string, array, object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj,
    };

    Json() = default;

    static Json boolean(bool value);
    static Json number(std::uint64_t value);
    static Json number(double value);
    static Json str(std::string value);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }

    /** @name Accessors (throw CorpusError on kind mismatch) */
    /// @{
    bool asBool() const;
    std::uint64_t asU64() const;
    unsigned asUnsigned() const;
    double asDouble() const;
    const std::string &asStr() const;
    const std::vector<Json> &items() const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /// @}

    /** Append to an array. */
    void push(Json value);

    /** Set/overwrite an object member (insertion order preserved). */
    void set(const std::string &key, Json value);

    /** Object member (throws CorpusError when absent). */
    const Json &at(const std::string &key) const;

    /** Object member or nullptr. */
    const Json *find(const std::string &key) const;

    /** Serialize canonically (no whitespace, members in insertion
     *  order). */
    std::string dump() const;

    /** Parse one JSON document (must consume the whole text). */
    static Json parse(const std::string &text);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< number text or string payload
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** @name Building blocks */
/// @{
/** Stable machine token for a trace format ("l1dtlb", "bpstate", ...) —
 *  display names do not reparse; these do (via parseTraceFormat). */
const char *traceFormatToken(executor::TraceFormat format);

Json toJson(const arch::Input &input);
arch::Input inputFromJson(const Json &json);

Json toJson(const executor::UTrace &trace);
executor::UTrace traceFromJson(const Json &json);

Json toJson(const executor::UarchContext &ctx);
executor::UarchContext contextFromJson(const Json &json);

Json toJson(const Rng::State &state);
Rng::State rngStateFromJson(const Json &json);
/// @}

/**
 * @name Violation records
 * The program travels as its disassembly and is reparsed through the
 * assembler on load; recordFromJson throws CorpusError when the listing
 * no longer assembles.
 */
/// @{
Json toJson(const core::ViolationRecord &record);
core::ViolationRecord recordFromJson(const Json &json);
/// @}

/**
 * @name Campaign configuration
 * Serializes the campaign *definition*: generator/input/harness/contract
 * knobs, scale, and seed. Runtime knobs (jobs, backend, corpus fields)
 * are excluded — they may legally differ between the runs of one corpus.
 */
/// @{
Json configToJson(const core::CampaignConfig &config);
core::CampaignConfig configFromJson(const Json &json);

/** Harness configuration alone — the subset an out-of-process simulator
 *  worker needs to reconstruct its SimHarness (executor/sim_protocol). */
Json harnessToJson(const executor::HarnessConfig &config);
executor::HarnessConfig harnessFromJson(const Json &json);

/** Stable hex fingerprint of the campaign definition (FNV-1a over the
 *  canonical dump). Checkpoints and journals refuse to mix
 *  fingerprints. */
std::string configFingerprint(const core::CampaignConfig &config);
/// @}

/**
 * @name Per-program outcomes (checkpoint payload)
 * Serializes counters, signature counts, and format tallies — the sink
 * state a resumed campaign restores instead of re-running the program.
 * Violation records are deliberately excluded: the journal already
 * holds them (keyed by program index), so checkpoints stay O(counters)
 * and are never a second copy of megabyte-scale records.
 */
/// @{
Json outcomeToJson(const runtime::ProgramOutcome &outcome);
runtime::ProgramOutcome outcomeFromJson(const Json &json);
/// @}

} // namespace amulet::corpus

#endif // AMULET_CORPUS_SERDE_HH

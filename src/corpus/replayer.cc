#include "corpus/replayer.hh"

#include <sstream>

#include "corpus/serde.hh"
#include "isa/assembler.hh"

namespace amulet::corpus
{

isa::Program
reparseProgram(const core::ViolationRecord &record)
{
    try {
        return isa::assemble(record.programText);
    } catch (const isa::AsmError &e) {
        throw CorpusError(std::string("record program does not "
                                      "assemble: ") +
                          e.what());
    }
}

ReplayOutcome
replayViolation(executor::SimHarness &harness,
                const core::ViolationRecord &record)
{
    const isa::Program prog = reparseProgram(record);
    const isa::FlatProgram fp(prog, harness.config().map.codeBase);
    harness.loadProgram(&fp);

    // Same shape as the campaign's original same-context runs: restore
    // the recorded predictor context, run, extract. The harness resets
    // caches/TLB between inputs exactly as it did during detection.
    harness.restoreContext(record.ctxA);
    const executor::UTrace trace_a = harness.runInput(record.inputA).trace;
    harness.restoreContext(record.ctxB);
    const executor::UTrace trace_b = harness.runInput(record.inputB).trace;

    ReplayOutcome outcome;
    outcome.reproducedA = trace_a == record.traceA;
    outcome.reproducedB = trace_b == record.traceB;
    outcome.diverges = !(trace_a == trace_b);
    if (!outcome.confirmed()) {
        std::ostringstream os;
        if (!outcome.reproducedA)
            os << "trace A drifted from the recording; ";
        if (!outcome.reproducedB)
            os << "trace B drifted from the recording; ";
        if (!outcome.diverges)
            os << "replayed traces are equal (violation gone); ";
        os << "replayed A=" << trace_a.describe(8)
           << " B=" << trace_b.describe(8);
        outcome.detail = os.str();
    }
    return outcome;
}

ReplayOutcome
replayViolation(const core::CampaignConfig &config,
                const core::ViolationRecord &record)
{
    executor::SimHarness harness(config.harness);
    return replayViolation(harness, record);
}

} // namespace amulet::corpus

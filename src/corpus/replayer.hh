/**
 * @file
 * Exact violation replay (§3.3).
 *
 * A journaled ViolationRecord carries everything its detection depended
 * on: the program (as disassembly), the input pair, and the starting
 * μarch contexts of both runs. The replayer reassembles the program,
 * rebuilds a SimHarness from the corpus config, restores each recorded
 * context, re-executes both inputs, and checks bit-for-bit that (a) each
 * replayed trace equals the recorded one and (b) the pair still
 * diverges. This is what makes a corpus a regression suite: minimization
 * (minimizeViolation) and root-causing (renderSideBySide) run offline
 * from journaled records instead of only inside a live campaign.
 */

#ifndef AMULET_CORPUS_REPLAYER_HH
#define AMULET_CORPUS_REPLAYER_HH

#include <string>

#include "core/campaign.hh"
#include "core/violation.hh"
#include "executor/sim_harness.hh"

namespace amulet::corpus
{

/** Verdict of one record replay. */
struct ReplayOutcome
{
    bool reproducedA = false; ///< replayed trace A == recorded trace A
    bool reproducedB = false; ///< replayed trace B == recorded trace B
    bool diverges = false;    ///< replayed traces differ (the violation)

    /** The record replays exactly and still violates. */
    bool
    confirmed() const
    {
        return reproducedA && reproducedB && diverges;
    }

    /** Human-readable explanation when not confirmed. */
    std::string detail;
};

/**
 * Replay @p record on @p harness (which must have been built from the
 * corpus' campaign config — use the convenience overload otherwise).
 * The harness' loaded program is replaced. Throws CorpusError when the
 * recorded program no longer assembles.
 */
ReplayOutcome replayViolation(executor::SimHarness &harness,
                              const core::ViolationRecord &record);

/** Convenience: boot a fresh harness from @p config and replay. */
ReplayOutcome replayViolation(const core::CampaignConfig &config,
                              const core::ViolationRecord &record);

/**
 * Reassemble and flatten a record's program at the config's code base —
 * shared by replay, offline minimization, and root-cause rendering.
 */
isa::Program reparseProgram(const core::ViolationRecord &record);

} // namespace amulet::corpus

#endif // AMULET_CORPUS_REPLAYER_HH

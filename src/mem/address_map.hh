/**
 * @file
 * Guest address-space layout.
 *
 * Mirrors the paper's test setup (§3.1, §3.5): generated code lives in a
 * code region, all data accesses are forced into a memory sandbox of 1-128
 * 4 KiB pages based at the R14 register, and the cache-priming region
 * supplies addresses *outside* the sandbox that conflict with it in the
 * L1 (same set index, different tags) for the fill-with-conflicts
 * initialization (§3.2 C2).
 *
 * Virtual addresses map to physical addresses identically; the D-TLB still
 * tracks which pages were touched, which is what the TLB part of the μarch
 * trace observes.
 */

#ifndef AMULET_MEM_ADDRESS_MAP_HH
#define AMULET_MEM_ADDRESS_MAP_HH

#include <vector>

#include "common/types.hh"
#include "mem/memory_image.hh"

namespace amulet::mem
{

/** Layout parameters for one test configuration. */
struct AddressMap
{
    /** Base of the code region (block 0 starts here). */
    Addr codeBase = 0x400000;

    /** Base of the data sandbox (R14 at test start). */
    Addr sandboxBase = 0x800000;

    /** Sandbox size in 4 KiB pages (paper: 1 for most defenses, 128
     *  for STT to exercise TLB leakage). */
    unsigned sandboxPages = 1;

    /** Base of the priming region used to fill caches with conflicting,
     *  outside-sandbox addresses. Far from the sandbox so its pages and
     *  lines are disjoint. */
    Addr primeBase = 0x10000000;

    /** Sandbox size in bytes. */
    Addr sandboxSize() const { return Addr{sandboxPages} * kPageSize; }

    /** Mask applied to index registers before memory accesses
     *  (the `AND reg, 0b111111111111` idiom from the paper). */
    Addr sandboxMask() const { return sandboxSize() - 1; }

    /** One past the sandbox end. */
    Addr sandboxEnd() const { return sandboxBase + sandboxSize(); }

    /** Is @p addr inside the sandbox (with @p slack guard bytes)? */
    bool
    inSandbox(Addr addr, Addr slack = 0) const
    {
        return addr >= sandboxBase && addr < sandboxEnd() + slack;
    }

    /**
     * Addresses outside the sandbox that map to every (set, way) of a
     * cache with @p num_sets sets, @p num_ways ways and @p line_bytes
     * lines — the 64 x 8 fill addresses of §3.2. Way copies are spaced by
     * the cache stride so they conflict within a set.
     */
    std::vector<Addr> conflictFillAddrs(unsigned num_sets, unsigned num_ways,
                                        unsigned line_bytes) const;
};

} // namespace amulet::mem

#endif // AMULET_MEM_ADDRESS_MAP_HH

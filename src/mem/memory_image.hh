/**
 * @file
 * Sparse guest memory image.
 *
 * The simulated machine runs in a syscall-emulation-like mode: every
 * address is backed (reads of untouched memory return zero, writes
 * allocate), so neither architectural nor wrong-path accesses can fault.
 * Backing storage is allocated in 4 KiB frames on demand.
 */

#ifndef AMULET_MEM_MEMORY_IMAGE_HH
#define AMULET_MEM_MEMORY_IMAGE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace amulet::mem
{

/** Guest page/frame size. */
inline constexpr unsigned kPageShift = 12;
inline constexpr Addr kPageSize = Addr{1} << kPageShift;

/** Sparse byte-addressable memory with on-demand frame allocation. */
class MemoryImage
{
  public:
    /** Read one byte (0 for untouched memory). */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte, allocating the frame if needed. */
    void writeByte(Addr addr, std::uint8_t value);

    /** Little-endian read of @p size bytes (size in [1,8]). */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Little-endian write of @p size bytes (size in [1,8]). */
    void write(Addr addr, unsigned size, std::uint64_t value);

    /** Bulk copy in. */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk copy out (untouched bytes read as zero). */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Drop all frames (all bytes become zero). */
    void clear() { frames_.clear(); }

    /** Number of allocated frames (for stats/tests). */
    std::size_t numFrames() const { return frames_.size(); }

  private:
    using Frame = std::vector<std::uint8_t>;

    Frame *framePtr(Addr addr);
    const Frame *framePtr(Addr addr) const;

    std::unordered_map<Addr, Frame> frames_; ///< keyed by frame number
};

} // namespace amulet::mem

#endif // AMULET_MEM_MEMORY_IMAGE_HH

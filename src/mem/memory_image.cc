#include "mem/memory_image.hh"

#include <algorithm>
#include <cassert>

namespace amulet::mem
{

MemoryImage::Frame *
MemoryImage::framePtr(Addr addr)
{
    const Addr frame_no = addr >> kPageShift;
    auto it = frames_.find(frame_no);
    if (it == frames_.end())
        return nullptr;
    return &it->second;
}

const MemoryImage::Frame *
MemoryImage::framePtr(Addr addr) const
{
    const Addr frame_no = addr >> kPageShift;
    auto it = frames_.find(frame_no);
    if (it == frames_.end())
        return nullptr;
    return &it->second;
}

std::uint8_t
MemoryImage::readByte(Addr addr) const
{
    const Frame *f = framePtr(addr);
    if (!f)
        return 0;
    return (*f)[addr & (kPageSize - 1)];
}

void
MemoryImage::writeByte(Addr addr, std::uint8_t value)
{
    Frame *f = framePtr(addr);
    if (!f) {
        auto [it, _] = frames_.emplace(addr >> kPageShift,
                                       Frame(kPageSize, 0));
        f = &it->second;
    }
    (*f)[addr & (kPageSize - 1)] = value;
}

std::uint64_t
MemoryImage::read(Addr addr, unsigned size) const
{
    assert(size >= 1 && size <= 8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
MemoryImage::write(Addr addr, unsigned size, std::uint64_t value)
{
    assert(size >= 1 && size <= 8);
    for (unsigned i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
MemoryImage::writeBytes(Addr addr, const std::uint8_t *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const Addr a = addr + done;
        const Addr off = a & (kPageSize - 1);
        const std::size_t chunk =
            std::min<std::size_t>(len - done, kPageSize - off);
        Frame *f = framePtr(a);
        if (!f) {
            auto [it, _] =
                frames_.emplace(a >> kPageShift, Frame(kPageSize, 0));
            f = &it->second;
        }
        std::copy(data + done, data + done + chunk, f->begin() + off);
        done += chunk;
    }
}

void
MemoryImage::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    std::size_t done = 0;
    while (done < len) {
        const Addr a = addr + done;
        const Addr off = a & (kPageSize - 1);
        const std::size_t chunk =
            std::min<std::size_t>(len - done, kPageSize - off);
        if (const Frame *f = framePtr(a))
            std::copy(f->begin() + off, f->begin() + off + chunk,
                      out + done);
        else
            std::fill(out + done, out + done + chunk, 0);
        done += chunk;
    }
}

} // namespace amulet::mem

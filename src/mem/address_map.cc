#include "mem/address_map.hh"

namespace amulet::mem
{

std::vector<Addr>
AddressMap::conflictFillAddrs(unsigned num_sets, unsigned num_ways,
                              unsigned line_bytes) const
{
    std::vector<Addr> addrs;
    addrs.reserve(static_cast<std::size_t>(num_sets) * num_ways);
    const Addr stride = static_cast<Addr>(num_sets) * line_bytes;
    for (unsigned way = 0; way < num_ways; ++way) {
        for (unsigned set = 0; set < num_sets; ++set) {
            addrs.push_back(primeBase + way * stride +
                            static_cast<Addr>(set) * line_bytes);
        }
    }
    return addrs;
}

} // namespace amulet::mem

/**
 * @file
 * μarch traces: attacker observations extracted from the simulator.
 *
 * The default format is the snapshot of the final L1D-cache and D-TLB
 * state (§3.2 C1), modelling a realistic software attacker probing the
 * memory system. The alternative formats of Table 5 — branch-predictor
 * state, memory-access order, branch-prediction order — and the L1I
 * extension (used for KV1/KV2) are also available.
 */

#ifndef AMULET_EXECUTOR_UARCH_TRACE_HH
#define AMULET_EXECUTOR_UARCH_TRACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "uarch/pipeline.hh"

namespace amulet::executor
{

/** Selectable μarch trace contents. */
enum class TraceFormat
{
    L1dTlb,          ///< default: final L1D tags + D-TLB VPNs
    L1dTlbL1i,       ///< + final L1I tags (detects KV1/KV2)
    BpState,         ///< final branch-predictor state
    MemAccessOrder,  ///< ordered (pc, addr, kind) of every access issued
    BranchPredOrder, ///< ordered (pc, predicted target) at fetch
};

const char *traceFormatName(TraceFormat format);
std::optional<TraceFormat> parseTraceFormat(const std::string &name);
std::vector<TraceFormat> allTraceFormats();

/** One μarch trace: canonical word sequence; equality is the relation of
 *  Definition 2.1. */
struct UTrace
{
    TraceFormat format = TraceFormat::L1dTlb;
    std::vector<std::uint64_t> words;

    /** Cached 64-bit content hash, filled at extraction/deserialization
     *  time (0 = not computed). Never serialized — recomputed on load —
     *  and never part of equality; it only accelerates inequality via
     *  tracesEqual(). */
    std::uint64_t hash64 = 0;

    bool
    operator==(const UTrace &other) const
    {
        return format == other.format && words == other.words;
    }

    /** FNV-1a over the format tag and words. */
    std::uint64_t
    computeHash() const
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mix = [&h](std::uint64_t w) {
            for (int i = 0; i < 64; i += 8) {
                h ^= (w >> i) & 0xff;
                h *= 0x100000001b3ULL;
            }
        };
        mix(static_cast<std::uint64_t>(format));
        for (std::uint64_t w : words)
            mix(w);
        return h;
    }

    /** Fill the cache (idempotent; extraction and serde call this). */
    void finalizeHash() { hash64 = computeHash(); }

    /** Human-readable dump (for reports). */
    std::string describe(std::size_t max_words = 64) const;
};

/**
 * Equality with a hash fast path: two traces whose cached hashes both
 * exist and differ cannot be equal — the common case in relational
 * analysis, where almost every comparison is between *different*
 * traces of O(cache-size) words. Falls back to deep comparison on a
 * hash match (collision safety) or when either cache is unset, so the
 * result is always exact equality.
 */
inline bool
tracesEqual(const UTrace &a, const UTrace &b)
{
    if (a.hash64 != 0 && b.hash64 != 0 && a.hash64 != b.hash64)
        return false;
    return a == b;
}

/** Extract a trace of @p format from the pipeline's final state. */
UTrace extractTrace(const uarch::Pipeline &pipe, TraceFormat format);

/** The addresses present in one trace but not the other (L1D/TLB formats;
 *  used by signature analysis). */
std::vector<Addr> traceDiffAddrs(const UTrace &a, const UTrace &b);

} // namespace amulet::executor

#endif // AMULET_EXECUTOR_UARCH_TRACE_HH

/**
 * @file
 * Out-of-process executor backend: the simulator runs in a forked
 * amulet_sim_worker process, driven over a stdin/stdout JSONL protocol
 * (sim_protocol.hh).
 *
 * The backend tracks everything needed to rebuild a worker from scratch
 * — harness config, the loaded program's disassembly, and the last
 * known predictor context (every state-mutating reply carries endCtx) —
 * so a crashed or hung worker is killed, restarted, restored, and the
 * failed operation retried, with results byte-identical to an
 * uninterrupted run. A per-operation timeout bounds how long a wedged
 * worker can stall a shard.
 */

#ifndef AMULET_EXECUTOR_BACKEND_SUBPROCESS_HH
#define AMULET_EXECUTOR_BACKEND_SUBPROCESS_HH

#include <memory>
#include <optional>
#include <string>

#include "corpus/serde.hh"
#include "executor/backend.hh"

namespace amulet::executor
{

/** Locate the amulet_sim_worker executable: $AMULET_SIM_WORKER, then
 *  next to the current executable (same dir, examples/, ../examples/).
 *  Throws std::runtime_error when none is found. */
std::string findSimWorker();

/** Build the forked-worker backend. @p options.workerPath empty means
 *  findSimWorker(). */
std::unique_ptr<SimBackend>
makeSubprocessBackend(const HarnessConfig &config,
                      const BackendOptions &options = {});

/** Concrete subprocess backend — exposed (rather than factory-only) so
 *  tests can kill the worker and observe recovery directly. */
class SubprocessBackend final : public SimBackend
{
  public:
    SubprocessBackend(const HarnessConfig &config, BackendOptions options);
    ~SubprocessBackend() override;

    SubprocessBackend(const SubprocessBackend &) = delete;
    SubprocessBackend &operator=(const SubprocessBackend &) = delete;

    const char *name() const override { return "subprocess"; }
    BackendCaps
    caps() const override
    {
        BackendCaps caps;
        caps.outOfProcess = true;
        caps.uarchTrace = true;
        return caps;
    }

    void loadProgram(const isa::Program &source,
                     const isa::FlatProgram &flat) override;
    UarchContext saveContext() override;
    void restoreContext(const UarchContext &ctx) override;
    BatchOutput
    dispatchBatch(const std::vector<const arch::Input *> &batch,
                  const std::vector<TraceFormat> *extraFormats) override;
    SingleOutput runOne(const arch::Input &input,
                        const std::vector<TraceFormat> *extraFormats) override;
    std::string classify(const arch::Input &inputA,
                         const arch::Input &inputB, const UarchContext &ctxA,
                         const UarchContext &ctxB) override;
    const TimeBreakdown &times() override;

    /** Per-request wire flag (protocol v3): while on, run/batch
     *  requests ask the worker to trace and ship the per-instruction
     *  pipeline trace back in the reply. No restart state needed — a
     *  respawned worker honors the flag on the next request. */
    void setUarchTracing(bool on) override { utrace_ = on; }
    std::vector<telemetry::UarchRunTrace> takeUarchTraces() override;

    /** Current worker pid (-1: none). Diagnostics and kill tests. */
    int workerPid() const { return pid_; }

    /** Worker restarts performed so far (crash/timeout recoveries). */
    unsigned restarts() const { return restarts_; }

    /** Total restart-storm backoff slept so far (seconds). */
    double backoffSeconds() const { return backoffSec_; }

  private:
    /** Round-trip one request, restarting a dead/hung worker and
     *  re-establishing its state before a retry; after
     *  BackendOptions::maxAttempts failures on one op, throws
     *  WorkerQuarantineError (per-program verdict, see backend.hh). */
    corpus::Json roundTrip(const corpus::Json &request);

    /** Exponential pre-respawn sleep for retry @p attempt (>= 2). */
    void backoffBeforeRestart(unsigned attempt);

    /** Append any "utraces" the reply carried to collectedTraces_. */
    void collectReplyTraces(const corpus::Json &reply);

    void spawnWorker();      ///< fork/exec + hello (+ reload + restore)
    void killWorker();       ///< SIGKILL + reap + close pipes
    bool sendLine(const std::string &line);
    bool recvLine(std::string &line);

    HarnessConfig cfg_;
    BackendOptions opts_;

    int pid_ = -1;
    int toWorker_ = -1;   ///< write end of the worker's stdin
    int fromWorker_ = -1; ///< read end of the worker's stdout
    std::string rbuf_;    ///< partial-line read buffer

    /** Re-establishable worker state. */
    std::string programText_;
    std::optional<UarchContext> ctx_; ///< last known predictor state

    bool utrace_ = false;
    std::vector<telemetry::UarchRunTrace> collectedTraces_;

    unsigned restarts_ = 0;
    double backoffSec_ = 0;
    /** Breakdown accumulated by workers that have since died; every
     *  mutating reply refreshes lastWorkerTimes_, so a crash loses at
     *  most one operation's worth of timing. */
    TimeBreakdown deadWorkerTimes_;
    TimeBreakdown lastWorkerTimes_; ///< current worker, as of last reply
    TimeBreakdown times_;           ///< storage for times()
};

} // namespace amulet::executor

#endif // AMULET_EXECUTOR_BACKEND_SUBPROCESS_HH

/**
 * @file
 * Simulation harness: the AMuLeT executor (§3.1, §3.2).
 *
 * Wraps the simulator and implements the two execution strategies the
 * paper compares:
 *
 *  - **Naive**: the simulator is restarted (reconstructed + booted) for
 *    every input, starting from a clean cache state.
 *  - **Opt**: the simulator starts once per test program; between inputs
 *    only registers/memory are overwritten and the cache state is reset —
 *    either by *running* a conflict-fill priming program through the
 *    pipeline (InvisiSpec/STT style, §3.5) or via the direct invalidation
 *    hook (CleanupSpec/SpecLFB style). Predictor state persists across
 *    inputs, exactly as in AMuLeT-Opt.
 *
 * "Startup" performs real work — allocating the guest image and running a
 * fixed boot program through the full out-of-order pipeline — so the
 * startup:runtime ratio (two orders of magnitude, Table 2) is reproduced
 * with measured time rather than constants.
 */

#ifndef AMULET_EXECUTOR_SIM_HARNESS_HH
#define AMULET_EXECUTOR_SIM_HARNESS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/input.hh"
#include "common/event_log.hh"
#include "defense/factory.hh"
#include "executor/uarch_trace.hh"
#include "isa/program.hh"
#include "mem/address_map.hh"
#include "mem/memory_image.hh"
#include "uarch/pipeline.hh"

namespace amulet::telemetry
{
class Counter;
class Histogram;
class TelemetrySink;
class UarchTracer;
}

namespace amulet::executor
{

/** How caches are reset between inputs. */
enum class PrimeMode
{
    /** Fill the L1D with conflicting out-of-sandbox addresses by running
     *  a priming program (detects install- and eviction-based leaks). */
    ConflictFill,
    /** Invalidate caches via the simulator hook (clean-cache start). */
    Invalidate,
};

/** μarch context carried across inputs (and swapped during validation). */
struct UarchContext
{
    uarch::BranchPredictor::State bp;
    uarch::MemDepPredictor::State mdp;
};

/** Wall-clock breakdown per component (Table 2). */
struct TimeBreakdown
{
    double startupSec = 0;
    /** Input-switch cost: cache reset + conflict-fill priming (or the
     *  memoized snapshot restore) + TLB/L2 prefill. Previously folded
     *  into simulateSec; split out so the prime-cache optimization is
     *  visible in the breakdown. */
    double primeSec = 0;
    double simulateSec = 0;
    double traceExtractSec = 0;
    double testGenSec = 0;   ///< filled by the campaign
    double ctraceSec = 0;    ///< filled by the campaign
    double filterSec = 0;    ///< filled by the campaign (FilterStage)
    double otherSec = 0;

    double
    totalSec() const
    {
        return startupSec + primeSec + simulateSec + traceExtractSec +
               testGenSec + ctraceSec + filterSec + otherSec;
    }

    void
    accumulate(const TimeBreakdown &other)
    {
        startupSec += other.startupSec;
        primeSec += other.primeSec;
        simulateSec += other.simulateSec;
        traceExtractSec += other.traceExtractSec;
        testGenSec += other.testGenSec;
        ctraceSec += other.ctraceSec;
        filterSec += other.filterSec;
        otherSec += other.otherSec;
    }
};

/** D-TLB initialization between inputs. */
enum class TlbPrefill
{
    /** Guard page always; all sandbox pages too when the sandbox is a
     *  single page (the paper's setup for TLB-unprotected defenses). */
    Auto,
    GuardOnly,
    None,
};

/** Harness configuration. */
struct HarnessConfig
{
    uarch::CoreParams core;
    defense::DefenseConfig defense;
    mem::AddressMap map;
    PrimeMode prime = PrimeMode::ConflictFill;
    TraceFormat traceFormat = TraceFormat::L1dTlb;
    bool naiveMode = false;     ///< restart the simulator per input
    TlbPrefill tlbPrefill = TlbPrefill::Auto;
    unsigned bootInsts = 8000; ///< startup boot-program length (calibrated
                                ///  so Naive:Opt matches the paper ~10-13x)

    /**
     * Memoize conflict-fill priming: the priming program is branchless
     * and always starts from an invalidated hierarchy, so its resulting
     * μarch state is a constant of the harness. With the cache on, the
     * prime runs once and every later input restores the captured
     * uarch::MemSnapshot instead of re-simulating hundreds of loads.
     *
     * Runtime knob like CampaignConfig::backend: excluded from the
     * corpus config fingerprint because results are identical either
     * way — for fixed (config, seed), confirmed violations, signatures,
     * counters, and record bytes match for every (jobs, backend,
     * primeCache) triple (tests/test_prime_cache.cc). Debug builds
     * periodically re-run the real prime and assert the memo has not
     * drifted.
     */
    bool primeCache = true;

    /**
     * Event-horizon cycle skipping (Pipeline::setCycleSkip): quiescent
     * simulator cycles — no pipeline, memory-system, or defense state
     * can change before the next scheduled event — are elided by
     * fast-forwarding the cycle counter to that event.
     *
     * Runtime knob like primeCache: excluded from the corpus config
     * fingerprint because results are byte-identical either way —
     * committed-instruction cycles, EventLog timestamps, traces, and
     * verdicts match for every (jobs, backend, cycleSkip) triple
     * (tests/test_cycle_skip.cc). Debug builds periodically replay an
     * input with skipping off and assert identical results.
     */
    bool cycleSkip = true;
};

/** The executor. */
class SimHarness
{
  public:
    explicit SimHarness(HarnessConfig config);
    ~SimHarness();

    /** (Re)start the simulator: construct cold structures and boot.
     *  Called implicitly by runInput when needed. */
    void start();

    /** Select the test program for subsequent inputs. */
    void loadProgram(const isa::FlatProgram *prog);

    /** Result of one test-case run. */
    struct RunOutput
    {
        UTrace trace;
        uarch::RunResult run;
    };

    /**
     * Execute one input and extract the μarch trace. In Naive mode this
     * restarts the simulator first; in Opt mode it reuses it, resetting
     * caches per the configured PrimeMode.
     */
    RunOutput runInput(const arch::Input &input);

    /** Result of one batched run (class-ordered batched execution). */
    struct BatchOutput
    {
        /** One entry per completed input, in batch order. */
        std::vector<RunOutput> runs;
        /** μarch context saved immediately before each run (validation
         *  swaps re-start from these). */
        std::vector<UarchContext> startContexts;
        /** Per-run extra trace formats, when requested. */
        std::vector<std::vector<UTrace>> extras;
        /** The batch stopped early: runs.size() inputs completed and
         *  the next one hit the simulator cycle cap. */
        bool hitCycleCap = false;
    };

    /**
     * Execute a batch of inputs back-to-back — the inputs of one
     * contract equivalence class. Observationally identical to calling
     * saveContext + runInput (+ extractExtra) per input: per-input
     * priming is load-bearing (each trace must start from primed
     * caches), so nothing is elided. The batch is the *seam*: one call
     * per class is the unit a future asynchronous or out-of-process
     * backend dispatches whole. Inputs are passed by pointer — sandbox
     * payloads are never copied.
     */
    BatchOutput runBatch(const std::vector<const arch::Input *> &batch,
                         const std::vector<TraceFormat> *extraFormats =
                             nullptr);

    /** Extract an additional trace format from the last run's state. */
    UTrace extractExtra(TraceFormat format) const;

    /** @name μarch context (predictor state)
     *  Starts the simulator first if needed. */
    /// @{
    UarchContext saveContext();
    void restoreContext(const UarchContext &ctx);
    /// @}

    /** Debug-event recording (root-cause / signature re-runs). */
    void setEventLogging(bool on) { log_.setEnabled(on); }
    EventLog &eventLog() { return log_; }

    uarch::Pipeline &pipeline() { return *pipe_; }
    const HarnessConfig &config() const { return cfg_; }
    const TimeBreakdown &times() const { return times_; }
    void resetTimes() { times_ = TimeBreakdown{}; }

    /** Attach a telemetry sink (src/telemetry/): runInput feeds the
     *  sim.inputLatencySec histogram — per-input simulator latency,
     *  prime through trace extraction (BENCH percentiles). Null
     *  detaches. The sink must belong to the thread driving this
     *  harness. */
    void setTelemetry(telemetry::TelemetrySink *sink);

    /** Number of simulator (re)starts performed. */
    unsigned startCount() const { return startCount_; }

    /** Attach a per-instruction pipeline tracer (null detaches). The
     *  tracer observes exactly the *test-program* runs — boot, priming,
     *  and other aux programs are never traced — and records one
     *  UarchRunTrace per runInput. Observability only: attaching it
     *  changes no simulated state, so results are byte-identical traced
     *  or not (tests/test_uarch_trace.cc). */
    void setUarchTracer(telemetry::UarchTracer *tracer);

  private:
    void buildAuxPrograms();
    void resetBetweenInputs();
    void runPrimeProgram();

    HarnessConfig cfg_;
    EventLog log_;
    std::unique_ptr<mem::MemoryImage> memory_;
    std::unique_ptr<defense::Defense> defense_;
    std::unique_ptr<uarch::Pipeline> pipe_;
    const isa::FlatProgram *prog_ = nullptr;
    bool started_ = false;
    unsigned startCount_ = 0;
    TimeBreakdown times_;

    /** Boot program (startup cost) and conflict-fill priming program. */
    isa::Program bootSrc_;
    std::unique_ptr<isa::FlatProgram> bootProg_;
    isa::Program primeSrc_;
    std::unique_ptr<isa::FlatProgram> primeProg_;

    /** Post-prime warm state, captured after the first real conflict-
     *  fill run (primeCache); later inputs restore it instead of
     *  re-simulating the priming program. */
    std::optional<uarch::MemSnapshot> primeSnapshot_;
    unsigned primeRestores_ = 0; ///< drives the debug-mode drift audit

    /** Per-input latency histogram of the attached sink (null: no
     *  telemetry). Cached so runInput records with one pointer check
     *  instead of a registry lookup. */
    telemetry::Histogram *inputLatency_ = nullptr;

    /** Cycle-skip telemetry (null: no sink): cycles elided, skip
     *  windows, and the per-window skip-length distribution. */
    telemetry::Counter *skippedCycles_ = nullptr;
    telemetry::Counter *skipWindows_ = nullptr;
    telemetry::Histogram *skipCycles_ = nullptr;

#ifndef NDEBUG
    unsigned skipAudits_ = 0; ///< drives the debug replay audit cadence
#endif

    /** Pipeline tracer (null: off) + per-program disassembly table,
     *  rebuilt lazily when the loaded program changes. */
    telemetry::UarchTracer *utracer_ = nullptr;
    std::vector<std::string> utraceDisasm_;
    const isa::FlatProgram *utraceDisasmFor_ = nullptr;
};

} // namespace amulet::executor

#endif // AMULET_EXECUTOR_SIM_HARNESS_HH

/**
 * @file
 * Wire protocol between SubprocessBackend and the amulet_sim_worker
 * process: newline-delimited JSON over stdin/stdout, reusing the corpus
 * serde building blocks (inputs, traces, contexts travel in exactly the
 * journal's canonical encoding; programs travel as disassembly).
 *
 * Each request line gets exactly one reply line ({"ok":true,...} or
 * {"ok":false,"error":...}). Operations:
 *
 *   hello    {harness, primeCache, cycleSkip} -> {}
 *   load     {program}                 -> {}
 *   save     {}                        -> {ctx}
 *   restore  {ctx}                     -> {}
 *   batch    {inputs, extras?}         -> {runs, contexts, extras?,
 *                                          hitCycleCap, endCtx}
 *   run      {input, extras?}          -> {trace, hitCycleCap, extras?,
 *                                          endCtx}
 *   classify {inputA,inputB,ctxA,ctxB} -> {signature, endCtx}
 *   times    {}                        -> {times}
 *   exit     {}                        -> (worker exits)
 *
 * Every state-mutating reply carries endCtx, the worker's predictor
 * state after the operation. The backend tracks it so a crashed worker
 * can be restarted and brought to the exact pre-operation state
 * (hello + load + restore) before the operation is retried — which is
 * what makes recovery invisible in the campaign's results.
 */

#ifndef AMULET_EXECUTOR_SIM_PROTOCOL_HH
#define AMULET_EXECUTOR_SIM_PROTOCOL_HH

#include <string>
#include <vector>

#include "corpus/serde.hh"
#include "executor/backend.hh"

namespace amulet::executor::protocol
{

using corpus::Json;

/** Bumped on any incompatible wire change; hello carries it.
 *  v2: hello carries the primeCache runtime knob (it is deliberately
 *  not part of the serialized harness config — the corpus fingerprint
 *  must not change with it), and times replies carry primeSec.
 *  v3: run requests may carry "utrace":true; the reply then carries
 *  "utrace", the serialized per-instruction pipeline trace of the run
 *  (uarchRunTraceToJson). Purely additive for the result path — traced
 *  and untraced runs are state-identical.
 *  v4: hello also carries the cycleSkip runtime knob (fingerprint-
 *  excluded like primeCache; results are byte-identical either way,
 *  the knob only decides whether the worker's simulator fast-forwards
 *  quiescent cycles).
 *
 *  CampaignConfig::ctraceMemo (the other fingerprint-excluded runtime
 *  knob of its kind) never crosses the wire at all: contract traces
 *  are collected parent-side in CTraceStage, and the worker only ever
 *  sees the simulator half of the pipeline. */
inline constexpr unsigned kProtocolVersion = 4;

/** @name Shared field encodings */
/// @{
Json traceFormatsToJson(const std::vector<TraceFormat> &formats);
std::vector<TraceFormat> traceFormatsFromJson(const Json &json);

Json runResultToJson(const uarch::RunResult &run);
uarch::RunResult runResultFromJson(const Json &json);

Json timesToJson(const TimeBreakdown &times);
TimeBreakdown timesFromJson(const Json &json);

Json batchOutputToJson(const SimHarness::BatchOutput &out);
SimHarness::BatchOutput batchOutputFromJson(const Json &json);

/** Per-instruction pipeline trace of one run (protocol v3 "utrace"
 *  reply field). Lossless: fromJson(toJson(t)) == t, which is what lets
 *  the forensics path treat subprocess traces exactly like in-process
 *  ones. */
Json uarchRunTraceToJson(const telemetry::UarchRunTrace &run);
telemetry::UarchRunTrace uarchRunTraceFromJson(const Json &json);
/// @}

/** Reply wrappers. */
Json okReply();
Json errorReply(const std::string &message);

} // namespace amulet::executor::protocol

#endif // AMULET_EXECUTOR_SIM_PROTOCOL_HH

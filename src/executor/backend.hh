/**
 * @file
 * Executor backend abstraction: the seam between test-case orchestration
 * and simulator execution.
 *
 * The pipeline stages (src/pipeline/) and the shard runtime
 * (src/runtime/) drive an abstract SimBackend instead of a concrete
 * SimHarness, so the simulator can live in this thread, behind a
 * dedicated simulation thread, or in another process — without the
 * fuzzing loop knowing. Revizor and SpecFuzz draw the same line between
 * orchestration and execution target; here it is what lets one campaign
 * definition run against gem5-style out-of-process simulators or remote
 * shards later.
 *
 * Determinism contract: every backend executes the exact same simulator
 * operation sequence a plain SimHarness would — program loads, context
 * restores, per-input priming, batch order — so for a fixed
 * (config, seed), confirmed violations, signatures, counters, and
 * journaled records are byte-identical across every (jobs, backend)
 * pair. tests/test_backend.cc enforces this per defense.
 *
 * Three backends ship behind makeBackend():
 *  - InProcessBackend: wraps a SimHarness directly (default; zero
 *    behavior change).
 *  - AsyncBackend (backend_async.hh): runs the harness on a dedicated
 *    simulation thread; submit/collect lets callers overlap test
 *    generation and analysis with simulator execution.
 *  - SubprocessBackend (backend_subprocess.hh): forks an
 *    amulet_sim_worker process and ships whole class batches over a
 *    stdin/stdout JSONL protocol (sim_protocol.hh), with crash
 *    detection, worker restart, and an op timeout.
 */

#ifndef AMULET_EXECUTOR_BACKEND_HH
#define AMULET_EXECUTOR_BACKEND_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "executor/sim_harness.hh"
#include "telemetry/uarch_trace.hh"

namespace amulet::telemetry
{
class TelemetrySink;
}

namespace amulet::executor
{

/** Selectable executor backends. */
enum class BackendKind
{
    InProcess,  ///< harness in the calling thread (default)
    Async,      ///< harness behind a dedicated simulation thread
    Subprocess, ///< harness in a forked amulet_sim_worker process
};

/** Stable token ("inproc", "async", "subprocess") — CLI flag values,
 *  report lines. */
const char *backendKindName(BackendKind kind);

/** Parse a backend token (case-insensitive). */
std::optional<BackendKind> parseBackendKind(const std::string &name);

/** All selectable backends, default first. */
std::vector<BackendKind> allBackendKinds();

/** What a backend supports beyond the synchronous core interface. */
struct BackendCaps
{
    /** submitBatch/submitRun defer work: the caller overlaps its own
     *  computation with simulator execution. Backends without it run
     *  submissions eagerly (submit + collect ≡ dispatch). */
    bool pipelined = false;
    /** The simulator lives in another process (no shared memory with
     *  the caller; programs travel as disassembly). */
    bool outOfProcess = false;
    /** setUarchTracing/takeUarchTraces work: per-instruction pipeline
     *  traces of test runs can be collected (out-of-process backends
     *  ship them back over the wire). */
    bool uarchTrace = false;
};

/**
 * Abstract executor backend. One backend instance is owned by one shard
 * and driven from that shard's worker thread only; backends are never
 * shared across workers.
 *
 * Batch/run submissions take inputs by pointer; the pointees must stay
 * valid until the matching collect returns.
 */
class SimBackend
{
  public:
    using RunOutput = SimHarness::RunOutput;
    using BatchOutput = SimHarness::BatchOutput;

    /** Handle for a submitted batch or single run. */
    using Ticket = std::uint64_t;

    /** Result of one validation-style single run. */
    struct SingleOutput
    {
        UTrace trace;
        bool hitCycleCap = false;
        /** One trace per requested extra format, in request order. */
        std::vector<UTrace> extras;
    };

    virtual ~SimBackend() = default;

    /** Stable backend token (matches backendKindName). */
    virtual const char *name() const = 0;

    virtual BackendCaps caps() const = 0;

    /**
     * Select the test program for subsequent dispatches. @p source is
     * the program's source listing (out-of-process backends ship it as
     * disassembly); @p flat is the flattened image in-process backends
     * execute. Both must outlive every dispatch up to the next load.
     */
    virtual void loadProgram(const isa::Program &source,
                             const isa::FlatProgram &flat) = 0;

    /** @name μarch context (predictor state). Starts the simulator
     *  first when needed. */
    /// @{
    virtual UarchContext saveContext() = 0;
    virtual void restoreContext(const UarchContext &ctx) = 0;
    /// @}

    /**
     * Execute one contract-equivalence-class batch (the dispatch unit,
     * see SimHarness::runBatch). Synchronous: returns when the whole
     * batch ran.
     */
    virtual BatchOutput
    dispatchBatch(const std::vector<const arch::Input *> &batch,
                  const std::vector<TraceFormat> *extraFormats) = 0;

    /**
     * One validation re-run: the μarch trace of @p input under the
     * current context (plus any extra formats), without batch
     * bookkeeping. Equivalent to SimHarness::runInput + extractExtra.
     */
    virtual SingleOutput
    runOne(const arch::Input &input,
           const std::vector<TraceFormat> *extraFormats) = 0;

    /**
     * Classify a confirmed violation by signature
     * (core::classifyViolation): event-logged re-runs of both inputs
     * under their original contexts, on the loaded program.
     */
    virtual std::string classify(const arch::Input &inputA,
                                 const arch::Input &inputB,
                                 const UarchContext &ctxA,
                                 const UarchContext &ctxB) = 0;

    /** @name Pipelined dispatch
     * Submit work now, collect results later. The default
     * implementations run eagerly at submit time and only store the
     * result, preserving the synchronous operation order — correct for
     * every backend, overlapping for none. Pipelined backends override
     * these; callers check caps().pipelined before relying on overlap.
     * Tickets must be collected exactly once, in any order.
     */
    /// @{
    virtual Ticket submitBatch(const std::vector<const arch::Input *> &batch,
                               const std::vector<TraceFormat> *extraFormats);
    virtual BatchOutput collectBatch(Ticket ticket);
    virtual Ticket submitRun(const arch::Input &input,
                             const std::vector<TraceFormat> *extraFormats);
    virtual SingleOutput collectRun(Ticket ticket);
    /// @}

    /** Block until every submitted operation has finished (or been
     *  abandoned after a failure). Callers must sync before destroying
     *  state a pending submission points into. */
    virtual void sync() {}

    /** Harness wall-clock breakdown accumulated so far. Implies
     *  sync(). */
    virtual const TimeBreakdown &times() = 0;

    /**
     * Attach a telemetry sink (src/telemetry/) for op timers/spans and
     * the per-input sim latency histogram; null detaches. The sink must
     * be dedicated to this backend: backends that run operations on
     * their own simulation thread record into it from that thread.
     * Attach before the first operation. Observability only — the
     * operation sequence is identical with or without a sink.
     */
    virtual void setTelemetry(telemetry::TelemetrySink *sink)
    {
        telemetry_ = sink;
    }

    /** @name Per-instruction pipeline tracing (caps().uarchTrace)
     * While on, every runOne/dispatchBatch test run records a
     * telemetry::UarchRunTrace; takeUarchTraces drains them in
     * execution order. Observability only: results are byte-identical
     * with tracing on or off (the forensics path re-runs journaled
     * violations with it forced on). Defaults are no-ops so backends
     * without the cap stay correct.
     */
    /// @{
    virtual void setUarchTracing(bool) {}
    virtual std::vector<telemetry::UarchRunTrace> takeUarchTraces()
    {
        return {};
    }
    /// @}

  protected:
    telemetry::TelemetrySink *telemetry_ = nullptr;
    /** Eager-result stores for the default submit/collect. */
    std::map<Ticket, BatchOutput> eagerBatches_;
    std::map<Ticket, SingleOutput> eagerRuns_;
    Ticket nextTicket_ = 1;
};

/** The default backend: a SimHarness driven from the calling thread. */
class InProcessBackend final : public SimBackend
{
  public:
    explicit InProcessBackend(const HarnessConfig &config);

    const char *name() const override { return "inproc"; }
    BackendCaps caps() const override
    {
        BackendCaps c;
        c.uarchTrace = true;
        return c;
    }

    void loadProgram(const isa::Program &source,
                     const isa::FlatProgram &flat) override;
    UarchContext saveContext() override;
    void restoreContext(const UarchContext &ctx) override;
    BatchOutput
    dispatchBatch(const std::vector<const arch::Input *> &batch,
                  const std::vector<TraceFormat> *extraFormats) override;
    SingleOutput runOne(const arch::Input &input,
                        const std::vector<TraceFormat> *extraFormats) override;
    std::string classify(const arch::Input &inputA,
                         const arch::Input &inputB, const UarchContext &ctxA,
                         const UarchContext &ctxB) override;
    const TimeBreakdown &times() override { return harness_.times(); }
    void setTelemetry(telemetry::TelemetrySink *sink) override;
    void setUarchTracing(bool on) override;
    std::vector<telemetry::UarchRunTrace> takeUarchTraces() override;

    /** The wrapped harness (root-cause demos, tests). */
    SimHarness &harness() { return harness_; }

  private:
    SimHarness harness_;
    const isa::FlatProgram *flat_ = nullptr;
    telemetry::UarchTracer utracer_;
};

/** Backend-construction options beyond the harness config. */
struct BackendOptions
{
    /** amulet_sim_worker executable (subprocess backend); empty: resolve
     *  via $AMULET_SIM_WORKER, then next to the current executable. */
    std::string workerPath;
    /** Per-operation reply timeout for out-of-process workers; a worker
     *  that stays silent longer is killed and restarted (seconds).
     *  $AMULET_SIM_OP_TIMEOUT_SEC, when set to a positive number,
     *  overrides this (the scheduler builds backends with default
     *  options, so campaign-level tests tighten the watchdog via the
     *  environment). */
    double opTimeoutSec = 600.0;
    /** Attempts per operation before the worker is declared poisoned
     *  and the op escalates to WorkerQuarantineError (min 1). */
    unsigned maxAttempts = 3;
    /** Base sleep before the second and later respawns of one op,
     *  doubling per attempt (restart-storm guard; seconds). The first
     *  retry is immediate so a clean crash-restart stays fast. Slept
     *  time is recorded in the `backend.restartBackoffSec` timer. */
    double restartBackoffSec = 0.02;
};

/**
 * An out-of-process worker failed every allowed attempt at one
 * operation (crash loop, persistent hang, or unparseable replies).
 * This is a *per-program* verdict, not a campaign failure:
 * ShardExecutor catches it and reports the program as quarantined, and
 * the campaign continues with a fresh worker.
 */
class WorkerQuarantineError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Build a backend for @p kind. Throws std::runtime_error when the kind
 *  needs a helper this installation lacks (e.g. no amulet_sim_worker
 *  found). */
std::unique_ptr<SimBackend> makeBackend(BackendKind kind,
                                        const HarnessConfig &config,
                                        const BackendOptions &options = {});

} // namespace amulet::executor

#endif // AMULET_EXECUTOR_BACKEND_HH

#include "executor/uarch_trace.hh"

#include <algorithm>
#include <sstream>

namespace amulet::executor
{

namespace
{

/// Section markers keep differently-shaped traces from colliding.
constexpr std::uint64_t kMarkL1d = 0xD1D1'0000'0000'0001ULL;
constexpr std::uint64_t kMarkTlb = 0xD1D1'0000'0000'0002ULL;
constexpr std::uint64_t kMarkL1i = 0xD1D1'0000'0000'0003ULL;

} // namespace

const char *
traceFormatName(TraceFormat format)
{
    switch (format) {
      case TraceFormat::L1dTlb:          return "L1D+TLB";
      case TraceFormat::L1dTlbL1i:       return "L1D+TLB+L1I";
      case TraceFormat::BpState:         return "BP state";
      case TraceFormat::MemAccessOrder:  return "Memory access order";
      case TraceFormat::BranchPredOrder: return "Branch prediction order";
    }
    return "?";
}

std::optional<TraceFormat>
parseTraceFormat(const std::string &name)
{
    std::string n;
    for (char c : name)
        n += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (n == "l1dtlb" || n == "l1d+tlb" || n == "default")
        return TraceFormat::L1dTlb;
    if (n == "l1dtlbl1i" || n == "l1d+tlb+l1i")
        return TraceFormat::L1dTlbL1i;
    if (n == "bpstate" || n == "bp")
        return TraceFormat::BpState;
    if (n == "memorder" || n == "accessorder")
        return TraceFormat::MemAccessOrder;
    if (n == "branchorder" || n == "predorder")
        return TraceFormat::BranchPredOrder;
    return std::nullopt;
}

std::vector<TraceFormat>
allTraceFormats()
{
    return {TraceFormat::L1dTlb, TraceFormat::L1dTlbL1i,
            TraceFormat::BpState, TraceFormat::MemAccessOrder,
            TraceFormat::BranchPredOrder};
}

std::string
UTrace::describe(std::size_t max_words) const
{
    std::ostringstream os;
    os << traceFormatName(format) << " [" << words.size() << " words]:";
    std::size_t shown = 0;
    for (std::uint64_t w : words) {
        if (shown++ >= max_words) {
            os << " ...";
            break;
        }
        os << " 0x" << std::hex << w << std::dec;
    }
    return os.str();
}

UTrace
extractTrace(const uarch::Pipeline &pipe, TraceFormat format)
{
    UTrace trace;
    trace.format = format;
    const uarch::MemSystem &mem = pipe.memSys();

    switch (format) {
      case TraceFormat::L1dTlb:
      case TraceFormat::L1dTlbL1i: {
        trace.words.push_back(kMarkL1d);
        for (Addr line : mem.l1d().snapshot())
            trace.words.push_back(line);
        trace.words.push_back(kMarkTlb);
        for (Addr vpn : mem.dtlb().snapshot())
            trace.words.push_back(vpn);
        if (format == TraceFormat::L1dTlbL1i) {
            trace.words.push_back(kMarkL1i);
            for (Addr line : mem.l1i().snapshot())
                trace.words.push_back(line);
        }
        break;
      }
      case TraceFormat::BpState: {
        auto &bp = const_cast<uarch::Pipeline &>(pipe).branchPredictor();
        trace.words = bp.traceWords();
        break;
      }
      case TraceFormat::MemAccessOrder:
        for (const auto &rec : pipe.accessOrder()) {
            trace.words.push_back(rec.pc);
            trace.words.push_back(rec.addr);
            trace.words.push_back(rec.isStore ? 1 : 0);
        }
        break;
      case TraceFormat::BranchPredOrder:
        for (const auto &rec : pipe.branchPredOrder()) {
            trace.words.push_back(rec.pc);
            trace.words.push_back(rec.predTargetPc);
        }
        break;
    }
    // Hash while the words are hot in cache: AnalyzeStage/ValidateStage
    // then reject unequal traces without touching the word arrays.
    trace.finalizeHash();
    return trace;
}

std::vector<Addr>
traceDiffAddrs(const UTrace &a, const UTrace &b)
{
    std::vector<std::uint64_t> wa = a.words;
    std::vector<std::uint64_t> wb = b.words;
    std::sort(wa.begin(), wa.end());
    std::sort(wb.begin(), wb.end());
    std::vector<Addr> diff;
    std::set_symmetric_difference(wa.begin(), wa.end(), wb.begin(),
                                  wb.end(), std::back_inserter(diff));
    return diff;
}

} // namespace amulet::executor

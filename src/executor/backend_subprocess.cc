#include "executor/backend_subprocess.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>

#include <fcntl.h>
#include <limits.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "executor/sim_protocol.hh"
#include "isa/disasm.hh"
#include "runtime/fault.hh"
#include "telemetry/telemetry.hh"

namespace amulet::executor
{

namespace
{

using corpus::Json;
using protocol::kProtocolVersion;

/** Directory part of @p path (empty when there is none). */
std::string
dirName(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

/** Writing to a worker that died mid-shutdown must surface as EPIPE on
 *  the write (handled as a crash), not as a process-killing SIGPIPE. */
void
ignoreSigpipeOnce()
{
    static const bool done = [] {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = SIG_IGN;
        sigaction(SIGPIPE, &sa, nullptr);
        return true;
    }();
    (void)done;
}

} // namespace

std::string
findSimWorker()
{
    if (const char *env = std::getenv("AMULET_SIM_WORKER")) {
        if (access(env, X_OK) == 0)
            return env;
        throw std::runtime_error(
            std::string("AMULET_SIM_WORKER is not executable: ") + env);
    }
    char buf[PATH_MAX];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        const std::string dir = dirName(buf);
        for (const std::string &candidate :
             {dir + "/amulet_sim_worker",
              dir + "/examples/amulet_sim_worker",
              dir + "/../examples/amulet_sim_worker"}) {
            if (access(candidate.c_str(), X_OK) == 0)
                return candidate;
        }
    }
    throw std::runtime_error(
        "amulet_sim_worker not found next to this executable; build the "
        "examples or set AMULET_SIM_WORKER");
}

SubprocessBackend::SubprocessBackend(const HarnessConfig &config,
                                     BackendOptions options)
    : cfg_(config), opts_(std::move(options))
{
    ignoreSigpipeOnce();
    if (opts_.workerPath.empty())
        opts_.workerPath = findSimWorker();
    if (const char *env = std::getenv("AMULET_SIM_OP_TIMEOUT_SEC")) {
        const double sec = std::strtod(env, nullptr);
        if (sec > 0)
            opts_.opTimeoutSec = sec;
    }
    spawnWorker();
}

SubprocessBackend::~SubprocessBackend()
{
    if (pid_ < 0)
        return;
    // Polite shutdown first; the worker exits on "exit" or on EOF.
    Json req = Json::object();
    req.set("op", Json::str("exit"));
    sendLine(req.dump());
    close(toWorker_);
    toWorker_ = -1;
    // Give it a moment, then force.
    for (int i = 0; i < 50; ++i) {
        if (waitpid(pid_, nullptr, WNOHANG) == pid_) {
            pid_ = -1;
            break;
        }
        usleep(2000);
    }
    if (pid_ >= 0) {
        kill(pid_, SIGKILL);
        waitpid(pid_, nullptr, 0);
    }
    if (fromWorker_ >= 0)
        close(fromWorker_);
}

void
SubprocessBackend::spawnWorker()
{
    int to_child[2];   // parent writes -> child stdin
    int from_child[2]; // child stdout -> parent reads
    // O_CLOEXEC: concurrently forked sibling workers (jobs > 1) must
    // not inherit this backend's pipe ends — a stray write end held
    // open in another worker would defeat EOF-based crash detection
    // (dup2 below clears the flag on the child's stdio copies).
    if (pipe2(to_child, O_CLOEXEC) != 0 ||
        pipe2(from_child, O_CLOEXEC) != 0) {
        throw std::runtime_error("subprocess backend: pipe() failed");
    }

    const pid_t pid = fork();
    if (pid < 0)
        throw std::runtime_error("subprocess backend: fork() failed");
    if (pid == 0) {
        // Child: wire the pipes to stdio and become the worker.
        dup2(to_child[0], STDIN_FILENO);
        dup2(from_child[1], STDOUT_FILENO);
        close(to_child[0]);
        close(to_child[1]);
        close(from_child[0]);
        close(from_child[1]);
        execl(opts_.workerPath.c_str(), opts_.workerPath.c_str(),
              static_cast<char *>(nullptr));
        _exit(127); // exec failed
    }
    close(to_child[0]);
    close(from_child[1]);
    pid_ = pid;
    toWorker_ = to_child[1];
    fromWorker_ = from_child[0];
    rbuf_.clear();

    // Handshake, then re-establish the worker's session state. These go
    // through raw send/recv (not roundTrip) — a worker that cannot even
    // say hello is not worth retry loops.
    auto must = [&](const Json &req, const char *what) {
        std::string reply_text;
        if (!sendLine(req.dump()) || !recvLine(reply_text)) {
            killWorker();
            throw std::runtime_error(
                std::string("subprocess backend: worker failed during ") +
                what + " (bad executable or crash at startup?)");
        }
        Json reply = Json::parse(reply_text);
        if (!reply.at("ok").asBool())
            throw std::runtime_error("subprocess backend: worker " +
                                     std::string(what) + " error: " +
                                     reply.at("error").asStr());
        return reply;
    };

    Json hello = Json::object();
    hello.set("op", Json::str("hello"));
    hello.set("version", Json::number(std::uint64_t{kProtocolVersion}));
    hello.set("harness", corpus::harnessToJson(cfg_));
    // Runtime knobs, excluded from the serialized harness config (the
    // corpus fingerprint must not move with them) but the worker's
    // simulator must still honor the operator's settings.
    hello.set("primeCache", Json::boolean(cfg_.primeCache));
    hello.set("cycleSkip", Json::boolean(cfg_.cycleSkip));
    must(hello, "hello");

    if (!programText_.empty()) {
        Json load = Json::object();
        load.set("op", Json::str("load"));
        load.set("program", Json::str(programText_));
        must(load, "program reload");
    }
    if (ctx_) {
        Json restore = Json::object();
        restore.set("op", Json::str("restore"));
        restore.set("ctx", corpus::toJson(*ctx_));
        must(restore, "context restore");
    }
}

void
SubprocessBackend::killWorker()
{
    if (pid_ >= 0) {
        kill(pid_, SIGKILL);
        waitpid(pid_, nullptr, 0);
        pid_ = -1;
        // The worker's counters die with it; fold in what its last
        // reply reported (at most one operation of timing is lost).
        deadWorkerTimes_.accumulate(lastWorkerTimes_);
        lastWorkerTimes_ = TimeBreakdown{};
    }
    if (toWorker_ >= 0) {
        close(toWorker_);
        toWorker_ = -1;
    }
    if (fromWorker_ >= 0) {
        close(fromWorker_);
        fromWorker_ = -1;
    }
    rbuf_.clear();
}

bool
SubprocessBackend::sendLine(const std::string &line)
{
    if (toWorker_ < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            write(toWorker_, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE: worker died
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
SubprocessBackend::recvLine(std::string &line)
{
    if (fromWorker_ < 0)
        return false;
    const double timeout = opts_.opTimeoutSec;
    // The watchdog is a monotonic per-*operation* deadline, not a
    // per-poll() budget: a worker trickling one byte per poll interval
    // would otherwise reset the timeout forever and evade the kill.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout > 0 ? timeout : 0));
    for (;;) {
        const auto nl = rbuf_.find('\n');
        if (nl != std::string::npos) {
            line = rbuf_.substr(0, nl);
            rbuf_.erase(0, nl + 1);
            return true;
        }
        struct pollfd pfd;
        pfd.fd = fromWorker_;
        pfd.events = POLLIN;
        int timeout_ms = -1;
        if (timeout > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                return false; // deadline spent: wedged or trickling
            timeout_ms = static_cast<int>(
                std::min<long long>(left, INT_MAX));
        }
        const int ready = poll(&pfd, 1, timeout_ms);
        if (ready == 0)
            return false; // wedged worker: caller kills and restarts
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        char chunk[4096];
        const ssize_t n = read(fromWorker_, chunk, sizeof(chunk));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF: worker died
        }
        rbuf_.append(chunk, static_cast<std::size_t>(n));
    }
}

corpus::Json
SubprocessBackend::roundTrip(const Json &request)
{
    // The wire span covers serialization, the worker's execution, and
    // reply parsing — the true cost of shipping this op out of process
    // (restarted attempts included).
    const std::string spanName = "wire." + request.at("op").asStr();
    telemetry::SpanScope span(telemetry_, spanName.c_str());
    const std::string text = request.dump();
    // Deterministic chaos layer: ops inside a ShardExecutor program
    // scope carry a stable (program, op#) key the fault plan can
    // target. Boot and shard-end ops are unscoped and never faulted.
    const runtime::fault::FaultPlan *plan =
        runtime::fault::FaultPlan::active();
    const std::uint64_t opKey = runtime::fault::ProgramScope::nextOpKey();
    const unsigned program = runtime::fault::ProgramScope::currentProgram();
    const bool poisonedOp =
        plan && program != runtime::fault::ProgramScope::kNoProgram &&
        plan->poisoned(program);
    // Retries run on a fresh worker: the crash handler re-establishes
    // the exact pre-operation state (config, program, predictor
    // context), so a retried operation is deterministic. A worker that
    // fails every allowed attempt at one operation is poisoned by that
    // operation — escalate to a per-program quarantine instead of
    // killing the campaign.
    const unsigned max_attempts = std::max(1u, opts_.maxAttempts);
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt >= 2)
            backoffBeforeRestart(attempt);
        if (poisonedOp) {
            // Injected persistent failure: the op never reaches a
            // worker, every attempt fails, quarantine must trigger.
            killWorker();
            continue;
        }
        if (pid_ < 0) {
            ++restarts_;
            if (telemetry_)
                telemetry_->noteBackendRestart();
            spawnWorker();
        }
        if (plan && attempt == 0 && plan->fires("wire.crash", opKey))
            killWorker(); // simulated crash: the send below fails
        std::string reply_text;
        if (sendLine(text) && recvLine(reply_text)) {
            if (plan && attempt == 0) {
                if (plan->fires("wire.drop", opKey)) {
                    // Simulated hang: discard the good reply and take
                    // the timeout-kill-restart path.
                    killWorker();
                    continue;
                }
                if (plan->fires("wire.garble", opKey))
                    reply_text.resize(reply_text.size() / 2);
            }
            // A reply that does not parse, or parses without the
            // protocol's ok/error shape, is a worker malfunction — the
            // crash path (kill, restart, retry), never a campaign-
            // killing exception.
            std::optional<Json> reply;
            std::string workerError;
            bool isWorkerError = false;
            try {
                Json parsed = Json::parse(reply_text);
                if (!parsed.at("ok").asBool()) {
                    workerError = parsed.at("error").asStr();
                    isWorkerError = true;
                } else {
                    reply.emplace(std::move(parsed));
                }
            } catch (const corpus::CorpusError &) {
                // garbled/truncated reply: fall through to killWorker
            }
            if (isWorkerError)
                throw std::runtime_error(
                    "subprocess backend: worker error: " + workerError);
            if (reply)
                return *std::move(reply);
        }
        killWorker();
    }
    throw WorkerQuarantineError(
        "subprocess backend: worker failed " +
        std::to_string(max_attempts) + " attempts at one operation (op " +
        request.at("op").asStr() + ")" +
        (poisonedOp ? " [fault-plan poison]" : ""));
}

void
SubprocessBackend::backoffBeforeRestart(unsigned attempt)
{
    // Restart-storm guard: exponential backoff from the second retry
    // on (the first retry is immediate — a clean crash-restart should
    // not pay latency). Slept time is visible as the
    // backend.restartBackoffSec timer.
    const double sec =
        opts_.restartBackoffSec * static_cast<double>(1u << (attempt - 2));
    if (sec <= 0)
        return;
    usleep(static_cast<useconds_t>(sec * 1e6));
    backoffSec_ += sec;
    if (telemetry_)
        telemetry_->metrics().timer("backend.restartBackoffSec").add(sec);
}

void
SubprocessBackend::loadProgram(const isa::Program &source,
                               const isa::FlatProgram &)
{
    telemetry::SpanScope span(telemetry_, "op.loadProgram");
    programText_ = isa::formatProgram(source);
    Json req = Json::object();
    req.set("op", Json::str("load"));
    req.set("program", Json::str(programText_));
    roundTrip(req);
}

UarchContext
SubprocessBackend::saveContext()
{
    Json req = Json::object();
    req.set("op", Json::str("save"));
    const Json reply = roundTrip(req);
    UarchContext ctx = corpus::contextFromJson(reply.at("ctx"));
    // saveContext boots an idle worker; remember the state so a crash
    // before the next mutating op restores to it.
    ctx_ = ctx;
    return ctx;
}

void
SubprocessBackend::restoreContext(const UarchContext &ctx)
{
    telemetry::SpanScope span(telemetry_, "op.restoreContext");
    Json req = Json::object();
    req.set("op", Json::str("restore"));
    req.set("ctx", corpus::toJson(ctx));
    roundTrip(req);
    ctx_ = ctx;
}

SimBackend::BatchOutput
SubprocessBackend::dispatchBatch(const std::vector<const arch::Input *> &batch,
                                 const std::vector<TraceFormat> *extraFormats)
{
    telemetry::SpanScope span(telemetry_, "op.dispatchBatch");
    Json inputs = Json::array();
    for (const arch::Input *input : batch)
        inputs.push(corpus::toJson(*input));
    Json req = Json::object();
    req.set("op", Json::str("batch"));
    req.set("inputs", std::move(inputs));
    if (extraFormats)
        req.set("extras", protocol::traceFormatsToJson(*extraFormats));
    if (utrace_)
        req.set("utrace", Json::boolean(true));
    const Json reply = roundTrip(req);
    BatchOutput out = protocol::batchOutputFromJson(reply);
    if (!extraFormats)
        out.extras.clear();
    ctx_ = corpus::contextFromJson(reply.at("endCtx"));
    lastWorkerTimes_ = protocol::timesFromJson(reply.at("times"));
    collectReplyTraces(reply);
    return out;
}

SimBackend::SingleOutput
SubprocessBackend::runOne(const arch::Input &input,
                          const std::vector<TraceFormat> *extraFormats)
{
    telemetry::SpanScope span(telemetry_, "op.runOne");
    Json req = Json::object();
    req.set("op", Json::str("run"));
    req.set("input", corpus::toJson(input));
    if (extraFormats)
        req.set("extras", protocol::traceFormatsToJson(*extraFormats));
    if (utrace_)
        req.set("utrace", Json::boolean(true));
    const Json reply = roundTrip(req);
    SingleOutput out;
    out.trace = corpus::traceFromJson(reply.at("trace"));
    out.hitCycleCap = reply.at("hitCycleCap").asBool();
    for (const Json &t : reply.at("extras").items())
        out.extras.push_back(corpus::traceFromJson(t));
    ctx_ = corpus::contextFromJson(reply.at("endCtx"));
    lastWorkerTimes_ = protocol::timesFromJson(reply.at("times"));
    collectReplyTraces(reply);
    return out;
}

void
SubprocessBackend::collectReplyTraces(const Json &reply)
{
    // Traces travel only in the successful reply, so the crash-retry
    // path can never record a duplicate.
    if (const Json *traces = reply.find("utraces")) {
        for (const Json &t : traces->items())
            collectedTraces_.push_back(protocol::uarchRunTraceFromJson(t));
    }
}

std::vector<telemetry::UarchRunTrace>
SubprocessBackend::takeUarchTraces()
{
    std::vector<telemetry::UarchRunTrace> out =
        std::move(collectedTraces_);
    collectedTraces_.clear();
    return out;
}

std::string
SubprocessBackend::classify(const arch::Input &inputA,
                            const arch::Input &inputB,
                            const UarchContext &ctxA, const UarchContext &ctxB)
{
    telemetry::SpanScope span(telemetry_, "op.classify");
    Json req = Json::object();
    req.set("op", Json::str("classify"));
    req.set("inputA", corpus::toJson(inputA));
    req.set("inputB", corpus::toJson(inputB));
    req.set("ctxA", corpus::toJson(ctxA));
    req.set("ctxB", corpus::toJson(ctxB));
    const Json reply = roundTrip(req);
    ctx_ = corpus::contextFromJson(reply.at("endCtx"));
    lastWorkerTimes_ = protocol::timesFromJson(reply.at("times"));
    return reply.at("signature").asStr();
}

const TimeBreakdown &
SubprocessBackend::times()
{
    Json req = Json::object();
    req.set("op", Json::str("times"));
    const Json reply = roundTrip(req);
    lastWorkerTimes_ = protocol::timesFromJson(reply.at("times"));
    times_ = deadWorkerTimes_;
    times_.accumulate(lastWorkerTimes_);
    return times_;
}

std::unique_ptr<SimBackend>
makeSubprocessBackend(const HarnessConfig &config,
                      const BackendOptions &options)
{
    return std::make_unique<SubprocessBackend>(config, options);
}

} // namespace amulet::executor

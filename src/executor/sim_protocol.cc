#include "executor/sim_protocol.hh"

namespace amulet::executor::protocol
{

Json
traceFormatsToJson(const std::vector<TraceFormat> &formats)
{
    Json arr = Json::array();
    for (TraceFormat fmt : formats)
        arr.push(Json::str(corpus::traceFormatToken(fmt)));
    return arr;
}

std::vector<TraceFormat>
traceFormatsFromJson(const Json &json)
{
    std::vector<TraceFormat> formats;
    formats.reserve(json.items().size());
    for (const Json &item : json.items()) {
        const auto parsed = parseTraceFormat(item.asStr());
        if (!parsed)
            throw corpus::CorpusError("sim protocol: unknown trace "
                                      "format: " +
                                      item.asStr());
        formats.push_back(*parsed);
    }
    return formats;
}

Json
runResultToJson(const uarch::RunResult &run)
{
    Json j = Json::object();
    j.set("halted", Json::boolean(run.halted));
    j.set("cycles", Json::number(std::uint64_t{run.cycles}));
    j.set("committedInsts", Json::number(run.committedInsts));
    j.set("squashes", Json::number(run.squashes));
    j.set("hitCycleCap", Json::boolean(run.hitCycleCap));
    return j;
}

uarch::RunResult
runResultFromJson(const Json &json)
{
    uarch::RunResult run;
    run.halted = json.at("halted").asBool();
    run.cycles = json.at("cycles").asU64();
    run.committedInsts = json.at("committedInsts").asU64();
    run.squashes = json.at("squashes").asU64();
    run.hitCycleCap = json.at("hitCycleCap").asBool();
    return run;
}

Json
timesToJson(const TimeBreakdown &times)
{
    Json j = Json::object();
    j.set("startupSec", Json::number(times.startupSec));
    j.set("primeSec", Json::number(times.primeSec));
    j.set("simulateSec", Json::number(times.simulateSec));
    j.set("traceExtractSec", Json::number(times.traceExtractSec));
    return j;
}

TimeBreakdown
timesFromJson(const Json &json)
{
    TimeBreakdown times;
    times.startupSec = json.at("startupSec").asDouble();
    times.primeSec = json.at("primeSec").asDouble();
    times.simulateSec = json.at("simulateSec").asDouble();
    times.traceExtractSec = json.at("traceExtractSec").asDouble();
    return times;
}

Json
batchOutputToJson(const SimHarness::BatchOutput &out)
{
    Json runs = Json::array();
    for (const SimHarness::RunOutput &run : out.runs) {
        Json r = Json::object();
        r.set("trace", corpus::toJson(run.trace));
        r.set("run", runResultToJson(run.run));
        runs.push(std::move(r));
    }
    Json contexts = Json::array();
    for (const UarchContext &ctx : out.startContexts)
        contexts.push(corpus::toJson(ctx));
    Json extras = Json::array();
    for (const std::vector<UTrace> &per_run : out.extras) {
        Json traces = Json::array();
        for (const UTrace &trace : per_run)
            traces.push(corpus::toJson(trace));
        extras.push(std::move(traces));
    }
    Json j = Json::object();
    j.set("runs", std::move(runs));
    j.set("contexts", std::move(contexts));
    j.set("extras", std::move(extras));
    j.set("hitCycleCap", Json::boolean(out.hitCycleCap));
    return j;
}

SimHarness::BatchOutput
batchOutputFromJson(const Json &json)
{
    SimHarness::BatchOutput out;
    for (const Json &r : json.at("runs").items()) {
        SimHarness::RunOutput run;
        run.trace = corpus::traceFromJson(r.at("trace"));
        run.run = runResultFromJson(r.at("run"));
        out.runs.push_back(std::move(run));
    }
    for (const Json &c : json.at("contexts").items())
        out.startContexts.push_back(corpus::contextFromJson(c));
    for (const Json &per_run : json.at("extras").items()) {
        std::vector<UTrace> traces;
        for (const Json &t : per_run.items())
            traces.push_back(corpus::traceFromJson(t));
        out.extras.push_back(std::move(traces));
    }
    out.hitCycleCap = json.at("hitCycleCap").asBool();
    return out;
}

Json
okReply()
{
    Json j = Json::object();
    j.set("ok", Json::boolean(true));
    return j;
}

Json
errorReply(const std::string &message)
{
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    j.set("error", Json::str(message));
    return j;
}

} // namespace amulet::executor::protocol

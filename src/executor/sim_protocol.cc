#include "executor/sim_protocol.hh"

namespace amulet::executor::protocol
{

Json
traceFormatsToJson(const std::vector<TraceFormat> &formats)
{
    Json arr = Json::array();
    for (TraceFormat fmt : formats)
        arr.push(Json::str(corpus::traceFormatToken(fmt)));
    return arr;
}

std::vector<TraceFormat>
traceFormatsFromJson(const Json &json)
{
    std::vector<TraceFormat> formats;
    formats.reserve(json.items().size());
    for (const Json &item : json.items()) {
        const auto parsed = parseTraceFormat(item.asStr());
        if (!parsed)
            throw corpus::CorpusError("sim protocol: unknown trace "
                                      "format: " +
                                      item.asStr());
        formats.push_back(*parsed);
    }
    return formats;
}

Json
runResultToJson(const uarch::RunResult &run)
{
    Json j = Json::object();
    j.set("halted", Json::boolean(run.halted));
    j.set("cycles", Json::number(std::uint64_t{run.cycles}));
    j.set("committedInsts", Json::number(run.committedInsts));
    j.set("squashes", Json::number(run.squashes));
    j.set("hitCycleCap", Json::boolean(run.hitCycleCap));
    return j;
}

uarch::RunResult
runResultFromJson(const Json &json)
{
    uarch::RunResult run;
    run.halted = json.at("halted").asBool();
    run.cycles = json.at("cycles").asU64();
    run.committedInsts = json.at("committedInsts").asU64();
    run.squashes = json.at("squashes").asU64();
    run.hitCycleCap = json.at("hitCycleCap").asBool();
    return run;
}

Json
timesToJson(const TimeBreakdown &times)
{
    Json j = Json::object();
    j.set("startupSec", Json::number(times.startupSec));
    j.set("primeSec", Json::number(times.primeSec));
    j.set("simulateSec", Json::number(times.simulateSec));
    j.set("traceExtractSec", Json::number(times.traceExtractSec));
    return j;
}

TimeBreakdown
timesFromJson(const Json &json)
{
    TimeBreakdown times;
    times.startupSec = json.at("startupSec").asDouble();
    times.primeSec = json.at("primeSec").asDouble();
    times.simulateSec = json.at("simulateSec").asDouble();
    times.traceExtractSec = json.at("traceExtractSec").asDouble();
    return times;
}

Json
batchOutputToJson(const SimHarness::BatchOutput &out)
{
    Json runs = Json::array();
    for (const SimHarness::RunOutput &run : out.runs) {
        Json r = Json::object();
        r.set("trace", corpus::toJson(run.trace));
        r.set("run", runResultToJson(run.run));
        runs.push(std::move(r));
    }
    Json contexts = Json::array();
    for (const UarchContext &ctx : out.startContexts)
        contexts.push(corpus::toJson(ctx));
    Json extras = Json::array();
    for (const std::vector<UTrace> &per_run : out.extras) {
        Json traces = Json::array();
        for (const UTrace &trace : per_run)
            traces.push(corpus::toJson(trace));
        extras.push(std::move(traces));
    }
    Json j = Json::object();
    j.set("runs", std::move(runs));
    j.set("contexts", std::move(contexts));
    j.set("extras", std::move(extras));
    j.set("hitCycleCap", Json::boolean(out.hitCycleCap));
    return j;
}

SimHarness::BatchOutput
batchOutputFromJson(const Json &json)
{
    SimHarness::BatchOutput out;
    for (const Json &r : json.at("runs").items()) {
        SimHarness::RunOutput run;
        run.trace = corpus::traceFromJson(r.at("trace"));
        run.run = runResultFromJson(r.at("run"));
        out.runs.push_back(std::move(run));
    }
    for (const Json &c : json.at("contexts").items())
        out.startContexts.push_back(corpus::contextFromJson(c));
    for (const Json &per_run : json.at("extras").items()) {
        std::vector<UTrace> traces;
        for (const Json &t : per_run.items())
            traces.push_back(corpus::traceFromJson(t));
        out.extras.push_back(std::move(traces));
    }
    out.hitCycleCap = json.at("hitCycleCap").asBool();
    return out;
}

namespace
{

/** InstLifecycle bool bits for the packed wire "flags" field. The bit
 *  assignment is part of protocol v3 — append, never reorder. */
enum : std::uint64_t
{
    kBitIssued = 1u << 0,
    kBitCompleted = 1u << 1,
    kBitCommitted = 1u << 2,
    kBitSquashed = 1u << 3,
    kBitIsLoad = 1u << 4,
    kBitIsStore = 1u << 5,
    kBitIsBranch = 1u << 6,
    kBitPredTaken = 1u << 7,
    kBitActualTaken = 1u << 8,
    kBitMispredicted = 1u << 9,
    kBitMemAddrKnown = 1u << 10,
    kBitWasUnsafeAtIssue = 1u << 11,
    kBitTainted = 1u << 12,
    kBitExposePending = 1u << 13,
    kBitInSpecBuffer = 1u << 14,
    kBitLfbHeld = 1u << 15,
    kBitUndoLogged = 1u << 16,
    kBitForwardedFromStore = 1u << 17,
    kBitBypassedUnknownStore = 1u << 18,
};

std::uint64_t
packLifecycleFlags(const telemetry::InstLifecycle &inst)
{
    std::uint64_t flags = 0;
    auto put = [&flags](bool value, std::uint64_t bit) {
        if (value)
            flags |= bit;
    };
    put(inst.issued, kBitIssued);
    put(inst.completed, kBitCompleted);
    put(inst.committed, kBitCommitted);
    put(inst.squashed, kBitSquashed);
    put(inst.isLoad, kBitIsLoad);
    put(inst.isStore, kBitIsStore);
    put(inst.isBranch, kBitIsBranch);
    put(inst.predTaken, kBitPredTaken);
    put(inst.actualTaken, kBitActualTaken);
    put(inst.mispredicted, kBitMispredicted);
    put(inst.memAddrKnown, kBitMemAddrKnown);
    put(inst.wasUnsafeAtIssue, kBitWasUnsafeAtIssue);
    put(inst.tainted, kBitTainted);
    put(inst.exposePending, kBitExposePending);
    put(inst.inSpecBuffer, kBitInSpecBuffer);
    put(inst.lfbHeld, kBitLfbHeld);
    put(inst.undoLogged, kBitUndoLogged);
    put(inst.forwardedFromStore, kBitForwardedFromStore);
    put(inst.bypassedUnknownStore, kBitBypassedUnknownStore);
    return flags;
}

void
unpackLifecycleFlags(telemetry::InstLifecycle &inst, std::uint64_t flags)
{
    inst.issued = flags & kBitIssued;
    inst.completed = flags & kBitCompleted;
    inst.committed = flags & kBitCommitted;
    inst.squashed = flags & kBitSquashed;
    inst.isLoad = flags & kBitIsLoad;
    inst.isStore = flags & kBitIsStore;
    inst.isBranch = flags & kBitIsBranch;
    inst.predTaken = flags & kBitPredTaken;
    inst.actualTaken = flags & kBitActualTaken;
    inst.mispredicted = flags & kBitMispredicted;
    inst.memAddrKnown = flags & kBitMemAddrKnown;
    inst.wasUnsafeAtIssue = flags & kBitWasUnsafeAtIssue;
    inst.tainted = flags & kBitTainted;
    inst.exposePending = flags & kBitExposePending;
    inst.inSpecBuffer = flags & kBitInSpecBuffer;
    inst.lfbHeld = flags & kBitLfbHeld;
    inst.undoLogged = flags & kBitUndoLogged;
    inst.forwardedFromStore = flags & kBitForwardedFromStore;
    inst.bypassedUnknownStore = flags & kBitBypassedUnknownStore;
}

} // namespace

Json
uarchRunTraceToJson(const telemetry::UarchRunTrace &run)
{
    Json disasm = Json::array();
    for (const std::string &line : run.disasm)
        disasm.push(Json::str(line));
    Json insts = Json::array();
    for (const telemetry::InstLifecycle &inst : run.insts) {
        // Fixed-position number tuple, not an object: a trace carries
        // thousands of these, so field names would dominate the line.
        Json tuple = Json::array();
        tuple.push(Json::number(std::uint64_t{inst.seq}));
        tuple.push(Json::number(inst.idx));
        tuple.push(Json::number(std::uint64_t{inst.pc}));
        tuple.push(Json::number(std::uint64_t{inst.fetchCycle}));
        tuple.push(Json::number(std::uint64_t{inst.issueCycle}));
        tuple.push(Json::number(std::uint64_t{inst.completeCycle}));
        tuple.push(Json::number(std::uint64_t{inst.commitCycle}));
        tuple.push(Json::number(std::uint64_t{inst.squashCycle}));
        tuple.push(Json::number(
            std::uint64_t{static_cast<std::uint8_t>(inst.squashCause)}));
        tuple.push(Json::number(std::uint64_t{inst.squashTrigger}));
        tuple.push(Json::number(std::uint64_t{inst.memAddr}));
        tuple.push(Json::number(packLifecycleFlags(inst)));
        insts.push(std::move(tuple));
    }
    Json j = Json::object();
    j.set("label", Json::str(run.label));
    j.set("cycles", Json::number(std::uint64_t{run.cycles}));
    j.set("disasm", std::move(disasm));
    j.set("insts", std::move(insts));
    return j;
}

telemetry::UarchRunTrace
uarchRunTraceFromJson(const Json &json)
{
    telemetry::UarchRunTrace run;
    run.label = json.at("label").asStr();
    run.cycles = json.at("cycles").asU64();
    for (const Json &line : json.at("disasm").items())
        run.disasm.push_back(line.asStr());
    for (const Json &tuple : json.at("insts").items()) {
        const auto &fields = tuple.items();
        if (fields.size() != 12)
            throw corpus::CorpusError("sim protocol: malformed utrace "
                                      "inst tuple");
        telemetry::InstLifecycle inst;
        inst.seq = fields[0].asU64();
        inst.idx = fields[1].asU64();
        inst.pc = fields[2].asU64();
        inst.fetchCycle = fields[3].asU64();
        inst.issueCycle = fields[4].asU64();
        inst.completeCycle = fields[5].asU64();
        inst.commitCycle = fields[6].asU64();
        inst.squashCycle = fields[7].asU64();
        inst.squashCause =
            static_cast<telemetry::SquashCause>(fields[8].asU64());
        inst.squashTrigger = fields[9].asU64();
        inst.memAddr = fields[10].asU64();
        unpackLifecycleFlags(inst, fields[11].asU64());
        run.insts.push_back(inst);
    }
    return run;
}

Json
okReply()
{
    Json j = Json::object();
    j.set("ok", Json::boolean(true));
    return j;
}

Json
errorReply(const std::string &message)
{
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    j.set("error", Json::str(message));
    return j;
}

} // namespace amulet::executor::protocol

#include "executor/sim_harness.hh"

#include <cassert>
#include <chrono>

#include "isa/disasm.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/uarch_trace.hh"

namespace amulet::executor
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Cycle bound for the harness's fixed boot/priming programs. They are
 * branchless and known to terminate, so they get a cap proportional to
 * their own length instead of the configured test-run cap — a test
 * campaign with a deliberately tight maxCyclesPerRun must abort
 * pathological *test* programs, not truncate startup or cache priming
 * (the latter silently left caches half-primed under tight caps).
 * 128 cycles/instruction is far beyond the fully-serialized worst case
 * (~memLatency + service interval per instruction).
 */
Cycle
auxProgramCap(std::size_t num_insts)
{
    return 10000 + 128 * static_cast<Cycle>(num_insts);
}

} // namespace

SimHarness::SimHarness(HarnessConfig config) : cfg_(std::move(config))
{
    buildAuxPrograms();
}

SimHarness::~SimHarness() = default;

void
SimHarness::buildAuxPrograms()
{
    using namespace isa;

    // Boot program: a branchless instruction stream mimicking SE-mode
    // process setup (zeroing memory, touching pages, register churn). Its
    // only purpose is to make startup cost real and measurable.
    {
        const Addr boot_base = 0x20000000;
        BasicBlock bb{"boot", {}};
        Inst lead;
        lead.op = Op::Mov;
        lead.dstKind = OpndKind::Reg;
        lead.dst = Reg::R15;
        lead.srcKind = OpndKind::Imm;
        lead.imm = static_cast<std::int64_t>(boot_base);
        bb.body.push_back(lead);

        std::int32_t disp = 0;
        for (unsigned i = 1; i < cfg_.bootInsts; ++i) {
            Inst inst;
            switch (i % 4) {
              case 0: { // store: zero the "BSS"
                inst.op = Op::Mov;
                inst.dstKind = OpndKind::Mem;
                inst.mem.base = Reg::R15;
                inst.mem.disp = disp;
                inst.srcKind = OpndKind::Reg;
                inst.src = Reg::Rax;
                disp = (disp + 64) % (1 << 20);
                break;
              }
              case 1: // load back
                inst.op = Op::Mov;
                inst.dstKind = OpndKind::Reg;
                inst.dst = Reg::Rbx;
                inst.srcKind = OpndKind::Mem;
                inst.mem.base = Reg::R15;
                inst.mem.disp = disp;
                break;
              case 2:
                inst.op = Op::Add;
                inst.dstKind = OpndKind::Reg;
                inst.dst = Reg::Rax;
                inst.srcKind = OpndKind::Reg;
                inst.src = Reg::Rbx;
                break;
              default:
                inst.op = Op::Xor;
                inst.dstKind = OpndKind::Reg;
                inst.dst = Reg::Rcx;
                inst.srcKind = OpndKind::Imm;
                inst.imm = static_cast<std::int64_t>(i & 0xff);
                break;
            }
            bb.body.push_back(inst);
        }
        bootSrc_ = Program{{bb}};
        bootProg_ = std::make_unique<FlatProgram>(bootSrc_, 0x200000);
    }

    // Conflict-fill priming program: one load per (set, way) of the L1D,
    // using addresses outside the memory sandbox (§3.2 C2).
    {
        BasicBlock bb{"prime", {}};
        Inst lead;
        lead.op = Op::Mov;
        lead.dstKind = OpndKind::Reg;
        lead.dst = Reg::R15;
        lead.srcKind = OpndKind::Imm;
        lead.imm = static_cast<std::int64_t>(cfg_.map.primeBase);
        bb.body.push_back(lead);

        const auto addrs = cfg_.map.conflictFillAddrs(
            cfg_.core.l1d.numSets(), cfg_.core.l1d.ways,
            cfg_.core.l1d.lineBytes);
        for (Addr a : addrs) {
            Inst load;
            load.op = Op::Mov;
            load.dstKind = OpndKind::Reg;
            load.dst = Reg::Rax;
            load.srcKind = OpndKind::Mem;
            load.mem.base = Reg::R15;
            load.mem.disp =
                static_cast<std::int32_t>(a - cfg_.map.primeBase);
            bb.body.push_back(load);
        }
        primeSrc_ = Program{{bb}};
        primeProg_ = std::make_unique<FlatProgram>(primeSrc_, 0x300000);
    }
}

void
SimHarness::start()
{
    const auto t0 = Clock::now();
    memory_ = std::make_unique<mem::MemoryImage>();
    defense_ = defense::makeDefense(cfg_.defense, cfg_.core);
    pipe_ = std::make_unique<uarch::Pipeline>(cfg_.core, *memory_, log_);
    pipe_->setDefense(defense_.get());
    pipe_->setCycleSkip(cfg_.cycleSkip);

    // SE-mode boot: run the boot stream through the full pipeline.
    std::array<RegVal, isa::kNumRegs> regs{};
    pipe_->setProgram(bootProg_.get());
    pipe_->setArchRegs(regs, isa::Flags{});
    const uarch::RunResult boot =
        pipe_->run(auxProgramCap(bootProg_->numInsts()));
    assert(boot.halted && "boot program must terminate");
    (void)boot;

    started_ = true;
    ++startCount_;
    times_.startupSec += secondsSince(t0);
}

void
SimHarness::loadProgram(const isa::FlatProgram *prog)
{
    prog_ = prog;
}

void
SimHarness::runPrimeProgram()
{
    // Run the priming instructions on the simulator itself — the
    // paper deliberately rejects a custom cache-reset instruction.
    std::array<RegVal, isa::kNumRegs> regs{};
    pipe_->setProgram(primeProg_.get());
    pipe_->setArchRegs(regs, isa::Flags{});
    const uarch::RunResult prime =
        pipe_->run(auxProgramCap(primeProg_->numInsts()));
    assert(prime.halted && "priming program must terminate");
    (void)prime;
    // Priming pollutes the L1I (its own code) and the TLB (prime
    // pages); reset both so only the L1D fill persists.
    uarch::MemSystem &mem = pipe_->memSys();
    mem.l1i().invalidateAll();
    mem.dtlb().flush();
}

void
SimHarness::resetBetweenInputs()
{
    uarch::MemSystem &mem = pipe_->memSys();
    mem.invalidateAll();

    if (cfg_.prime == PrimeMode::ConflictFill && !cfg_.naiveMode) {
        // The prime is a harness artifact, not part of the test: keep
        // its events out of the log so signature evidence is identical
        // whether the prime is simulated or restored from the memo.
        const bool log_was_enabled = log_.enabled();
        log_.setEnabled(false);
        if (cfg_.primeCache && primeSnapshot_) {
            // The priming program is branchless and deterministic from
            // a post-invalidateAll start, so restoring the captured
            // post-prime snapshot is state-identical to re-running it.
            mem.restore(*primeSnapshot_);
            ++primeRestores_;
#ifndef NDEBUG
            // Drift audit: periodically re-run the real prime on top of
            // the restored state and check it reproduces the memo. Runs
            // in debug builds only (the ASan/UBSan CI job exercises
            // it); a failure here means the memoization assumption —
            // priming is a pure function of the invalidated hierarchy —
            // has been broken by a simulator or defense change.
            if (primeRestores_ % 32 == 0) {
                mem.invalidateAll();
                runPrimeProgram();
                assert(mem.save() == *primeSnapshot_ &&
                       "prime-cache memo drifted from the real prime");
            }
#endif
        } else {
            runPrimeProgram();
            if (cfg_.primeCache)
                primeSnapshot_ = mem.save();
        }
        log_.setEnabled(log_was_enabled);
    }

    // TLB working-set prefill. The paper tests TLB-unprotected defenses
    // with a 1-page sandbox precisely so the TLB cannot leak; pre-filling
    // the sandbox page (and the guard page that line-crossing accesses
    // can spill into) realizes that design intent. For multi-page
    // sandboxes (STT) only the guard page is pre-filled, so within-
    // sandbox TLB leaks (KV3) stay observable.
    if (cfg_.tlbPrefill != TlbPrefill::None) {
        uarch::Tlb &tlb = mem.dtlb();
        const Addr guard_vpn = uarch::Tlb::vpnOf(cfg_.map.sandboxEnd());
        tlb.fill(guard_vpn);
        if (cfg_.tlbPrefill == TlbPrefill::Auto &&
            cfg_.map.sandboxPages == 1) {
            tlb.fill(uarch::Tlb::vpnOf(cfg_.map.sandboxBase));
        }
    }

    // The test binary is resident after the first execution in gem5's SE
    // mode; model that by keeping the code (plus the runahead window the
    // fetch unit can reach) warm in the L2. Without this, every input is
    // fully instruction-fetch serialized from DRAM and the timing
    // channels the paper reports (KV1/KV2/UV2) cannot surface.
    if (prog_) {
        const Addr line = cfg_.core.l2.lineBytes;
        const Addr runahead =
            cfg_.core.robSize * isa::FlatProgram::kInstBytes;
        for (Addr a = prog_->codeBase() & ~(line - 1);
             a < prog_->codeEnd() + runahead; a += line) {
            mem.l2().install(a);
        }
    }
}

SimHarness::RunOutput
SimHarness::runInput(const arch::Input &input)
{
    if (cfg_.naiveMode || !started_)
        start();
    assert(prog_ && "no test program loaded");
    const auto t_input = Clock::now();

#ifndef NDEBUG
    // Pre-run capture for the cycle-skip replay audit at the bottom:
    // predictor context and the event-log high-water mark, taken before
    // any per-input state changes so the replay covers the whole input.
    const bool auditThisInput = cfg_.cycleSkip && ++skipAudits_ % 32 == 0;
    std::optional<UarchContext> auditCtx;
    std::size_t logMark = 0;
    if (auditThisInput) {
        auditCtx = saveContext();
        logMark = log_.events().size();
    }
#endif

    // Input-switch cost is accounted separately (TimeBreakdown::
    // primeSec): it is what the prime cache optimizes, and folding it
    // into simulateSec — as earlier revisions did — hid the priming
    // tax behind the test's own simulation time.
    const auto t_prime = Clock::now();
    resetBetweenInputs();
    times_.primeSec += secondsSince(t_prime);

    const auto t0 = Clock::now();
    // Overwrite registers and the memory sandbox in place (AMuLeT-Opt's
    // input switch; a full restart in Naive mode).
    if (!input.sandbox.empty()) {
        memory_->writeBytes(cfg_.map.sandboxBase, input.sandbox.data(),
                            input.sandbox.size());
    }
    std::array<RegVal, isa::kNumRegs> regs = input.regs;
    regs[isa::regIndex(isa::kSandboxBaseReg)] = cfg_.map.sandboxBase;
    regs[isa::regIndex(isa::Reg::Rsp)] = 0;

    pipe_->setProgram(prog_);
    pipe_->setArchRegs(regs, isa::Flags::unpack(input.flagsByte));
    RunOutput out;
    // The tracer observes only this run: boot and priming happen above
    // (or inside resetBetweenInputs) with no tracer attached.
    if (utracer_) {
        if (utraceDisasmFor_ != prog_) {
            utraceDisasm_.clear();
            utraceDisasm_.reserve(prog_->numInsts());
            for (std::size_t i = 0; i < prog_->numInsts(); ++i) {
                std::string line = prog_->labelOf(i);
                if (!line.empty())
                    line += ": ";
                line += isa::formatInst(prog_->inst(i));
                utraceDisasm_.push_back(std::move(line));
            }
            utraceDisasmFor_ = prog_;
        }
        utracer_->beginRun(utraceDisasm_);
        pipe_->setTracer(utracer_);
    }
    out.run = pipe_->run();
    if (utracer_) {
        pipe_->setTracer(nullptr);
        utracer_->endRun(out.run.cycles);
    }
    times_.simulateSec += secondsSince(t0);

    // Drain per-run cycle-skip statistics into the sink (reset by the
    // next run()). Drained before the debug replay below clobbers them.
    if (skippedCycles_)
        skippedCycles_->add(pipe_->skippedCycles());
    if (skipWindows_)
        skipWindows_->add(pipe_->skipWindows());
    if (skipCycles_) {
        for (Cycle len : pipe_->skipLengths())
            skipCycles_->observe(static_cast<double>(len));
    }

    const auto t1 = Clock::now();
    out.trace = extractTrace(*pipe_, cfg_.traceFormat);
    times_.traceExtractSec += secondsSince(t1);
    if (inputLatency_)
        inputLatency_->observe(secondsSince(t_input));

#ifndef NDEBUG
    // Cycle-skip equivalence audit: periodically replay the whole input
    // — reset, priming, and run — with skipping off and assert the
    // results-invariance contract (identical RunResult, trace, and
    // debug-event stream). Debug builds only; a failure means a new
    // stage or defense changed state during a window the event-horizon
    // analysis considered quiescent (src/uarch/README.md).
    if (auditThisInput) {
        const std::vector<Event> real_events(
            log_.events().begin() + static_cast<std::ptrdiff_t>(logMark),
            log_.events().end());
        const std::size_t dropped_mark = log_.dropped();
        log_.truncate(logMark);
        pipe_->setCycleSkip(false);
        restoreContext(*auditCtx);
        resetBetweenInputs();
        if (!input.sandbox.empty()) {
            memory_->writeBytes(cfg_.map.sandboxBase,
                                input.sandbox.data(),
                                input.sandbox.size());
        }
        pipe_->setProgram(prog_);
        pipe_->setArchRegs(regs, isa::Flags::unpack(input.flagsByte));
        const uarch::RunResult ref = pipe_->run();
        assert(ref == out.run &&
               "cycle skipping changed the run outcome");
        const UTrace ref_trace = extractTrace(*pipe_, cfg_.traceFormat);
        assert(ref_trace == out.trace &&
               "cycle skipping changed the uarch trace");
        // Event streams must match too (capacity drops shift indices;
        // compare only when none occurred). The reference events now in
        // the log equal the originals, so no rewind is needed.
        if (log_.dropped() == dropped_mark) {
            const std::vector<Event> ref_events(
                log_.events().begin() +
                    static_cast<std::ptrdiff_t>(logMark),
                log_.events().end());
            assert(ref_events == real_events &&
                   "cycle skipping changed the debug-event stream");
        }
        pipe_->setCycleSkip(true);
    }
#endif
    return out;
}

void
SimHarness::setUarchTracer(telemetry::UarchTracer *tracer)
{
    utracer_ = tracer;
}

void
SimHarness::setTelemetry(telemetry::TelemetrySink *sink)
{
    inputLatency_ =
        sink ? &sink->metrics().histogram("sim.inputLatencySec") : nullptr;
    skippedCycles_ =
        sink ? &sink->metrics().counter("sim.skippedCycles") : nullptr;
    skipWindows_ =
        sink ? &sink->metrics().counter("sim.skipWindows") : nullptr;
    skipCycles_ =
        sink ? &sink->metrics().histogram("sim.skipCycles") : nullptr;
}

SimHarness::BatchOutput
SimHarness::runBatch(const std::vector<const arch::Input *> &batch,
                     const std::vector<TraceFormat> *extraFormats)
{
    BatchOutput out;
    out.runs.reserve(batch.size());
    out.startContexts.reserve(batch.size());
    for (const arch::Input *input : batch) {
        out.startContexts.push_back(saveContext());
        RunOutput run = runInput(*input);
        if (run.run.hitCycleCap) {
            out.startContexts.pop_back();
            out.hitCycleCap = true;
            break;
        }
        out.runs.push_back(std::move(run));
        if (extraFormats) {
            std::vector<UTrace> extra;
            extra.reserve(extraFormats->size());
            for (TraceFormat fmt : *extraFormats)
                extra.push_back(extractExtra(fmt));
            out.extras.push_back(std::move(extra));
        }
    }
    return out;
}

UTrace
SimHarness::extractExtra(TraceFormat format) const
{
    return extractTrace(*pipe_, format);
}

UarchContext
SimHarness::saveContext()
{
    if (!started_)
        start();
    UarchContext ctx;
    ctx.bp = pipe_->branchPredictor().save();
    ctx.mdp = pipe_->memDepPredictor().save();
    return ctx;
}

void
SimHarness::restoreContext(const UarchContext &ctx)
{
    if (!started_)
        start();
    pipe_->branchPredictor().restore(ctx.bp);
    pipe_->memDepPredictor().restore(ctx.mdp);
}

} // namespace amulet::executor

/**
 * @file
 * Asynchronous executor backend: the simulator runs on a dedicated
 * simulation thread behind an ordered operation queue.
 *
 * Every SimBackend operation is enqueued and executed FIFO on the sim
 * thread, so the harness sees exactly the operation sequence a
 * synchronous caller would issue — the determinism contract of
 * backend.hh holds structurally. Synchronous operations (saveContext,
 * dispatchBatch, runOne, classify) wait for their own completion;
 * submitBatch/submitRun return immediately, which is what lets the
 * shard's worker thread prepare the next program's test cases and drain
 * the previous class's analysis while the simulator executes
 * (src/runtime/ShardExecutor pipelining).
 */

#ifndef AMULET_EXECUTOR_BACKEND_ASYNC_HH
#define AMULET_EXECUTOR_BACKEND_ASYNC_HH

#include <memory>

#include "executor/backend.hh"

namespace amulet::executor
{

/** Build the dedicated-sim-thread backend. */
std::unique_ptr<SimBackend> makeAsyncBackend(const HarnessConfig &config);

} // namespace amulet::executor

#endif // AMULET_EXECUTOR_BACKEND_ASYNC_HH

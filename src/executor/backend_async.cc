#include "executor/backend_async.hh"

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/signature.hh"
#include "telemetry/telemetry.hh"

namespace amulet::executor
{

namespace
{

/**
 * One sim thread draining a FIFO of closures. Results are stored per
 * sequence number; waiters block on the completion counter, so waiting
 * for op N implies ops 0..N-1 finished too (queue order = harness
 * operation order).
 */
class AsyncBackend final : public SimBackend
{
  public:
    explicit AsyncBackend(const HarnessConfig &config) : harness_(config)
    {
        thread_ = std::thread([this] { simLoop(); });
    }

    ~AsyncBackend() override
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    const char *name() const override { return "async"; }

    BackendCaps
    caps() const override
    {
        BackendCaps caps;
        caps.pipelined = true;
        caps.uarchTrace = true;
        return caps;
    }

    void
    loadProgram(const isa::Program &, const isa::FlatProgram &flat) override
    {
        // Fire-and-forget: any failure surfaces at the next wait point.
        enqueue([this, &flat](SimHarness &h) {
            telemetry::SpanScope span(telemetry_, "op.loadProgram");
            flat_ = &flat;
            h.loadProgram(&flat);
        });
    }

    void
    setTelemetry(telemetry::TelemetrySink *sink) override
    {
        // Ops execute (and record) on the simulation thread, so the
        // sink must be dedicated to this backend — never the shard
        // worker's own. Routed through the queue to keep every sink
        // access on that one thread.
        telemetry_ = sink;
        enqueue([sink](SimHarness &h) { h.setTelemetry(sink); });
    }

    UarchContext
    saveContext() override
    {
        UarchContext ctx;
        waitFor(enqueue([&ctx](SimHarness &h) { ctx = h.saveContext(); }));
        return ctx;
    }

    void
    restoreContext(const UarchContext &ctx) override
    {
        enqueue([this, ctx](SimHarness &h) {
            telemetry::SpanScope span(telemetry_, "op.restoreContext");
            h.restoreContext(ctx);
        });
    }

    BatchOutput
    dispatchBatch(const std::vector<const arch::Input *> &batch,
                  const std::vector<TraceFormat> *extraFormats) override
    {
        return collectBatch(submitBatch(batch, extraFormats));
    }

    Ticket
    submitBatch(const std::vector<const arch::Input *> &batch,
                const std::vector<TraceFormat> *extraFormats) override
    {
        const Ticket ticket = nextTicket_++;
        // Copy the pointer list and format request; the pointees stay
        // alive until collect by the interface contract.
        auto extras = extraFormats
                          ? std::make_shared<std::vector<TraceFormat>>(
                                *extraFormats)
                          : nullptr;
        const std::uint64_t seq =
            enqueue([this, ticket, batch, extras](SimHarness &h) {
                telemetry::SpanScope span(telemetry_, "op.dispatchBatch");
                BatchOutput out = h.runBatch(batch, extras.get());
                std::lock_guard<std::mutex> lock(mu_);
                batches_.emplace(ticket, std::move(out));
            });
        ticketSeq_.emplace(ticket, seq);
        return ticket;
    }

    BatchOutput
    collectBatch(Ticket ticket) override
    {
        waitForTicket(ticket);
        std::lock_guard<std::mutex> lock(mu_);
        auto it = batches_.find(ticket);
        if (it == batches_.end())
            throw std::logic_error("AsyncBackend: unknown batch ticket");
        BatchOutput out = std::move(it->second);
        batches_.erase(it);
        return out;
    }

    SingleOutput
    runOne(const arch::Input &input,
           const std::vector<TraceFormat> *extraFormats) override
    {
        return collectRun(submitRun(input, extraFormats));
    }

    Ticket
    submitRun(const arch::Input &input,
              const std::vector<TraceFormat> *extraFormats) override
    {
        const Ticket ticket = nextTicket_++;
        auto extras = extraFormats
                          ? std::make_shared<std::vector<TraceFormat>>(
                                *extraFormats)
                          : nullptr;
        const std::uint64_t seq =
            enqueue([this, ticket, &input, extras](SimHarness &h) {
                telemetry::SpanScope span(telemetry_, "op.runOne");
                SingleOutput out;
                SimHarness::RunOutput run = h.runInput(input);
                out.trace = std::move(run.trace);
                out.hitCycleCap = run.run.hitCycleCap;
                if (extras) {
                    out.extras.reserve(extras->size());
                    for (TraceFormat fmt : *extras)
                        out.extras.push_back(h.extractExtra(fmt));
                }
                std::lock_guard<std::mutex> lock(mu_);
                runs_.emplace(ticket, std::move(out));
            });
        ticketSeq_.emplace(ticket, seq);
        return ticket;
    }

    SingleOutput
    collectRun(Ticket ticket) override
    {
        waitForTicket(ticket);
        std::lock_guard<std::mutex> lock(mu_);
        auto it = runs_.find(ticket);
        if (it == runs_.end())
            throw std::logic_error("AsyncBackend: unknown run ticket");
        SingleOutput out = std::move(it->second);
        runs_.erase(it);
        return out;
    }

    std::string
    classify(const arch::Input &inputA, const arch::Input &inputB,
             const UarchContext &ctxA, const UarchContext &ctxB) override
    {
        std::string signature;
        waitFor(enqueue([&, this](SimHarness &h) {
            if (!flat_)
                throw std::logic_error("AsyncBackend: classify with no "
                                       "loaded program");
            telemetry::SpanScope span(telemetry_, "op.classify");
            signature = core::classifyViolation(h, *flat_, inputA, inputB,
                                                ctxA, ctxB);
        }));
        return signature;
    }

    void
    setUarchTracing(bool on) override
    {
        // The tracer is sim-thread confined like the harness; route the
        // attach through the queue so it lands between ops, in order.
        enqueue([this, on](SimHarness &h) {
            h.setUarchTracer(on ? &utracer_ : nullptr);
        });
    }

    std::vector<telemetry::UarchRunTrace>
    takeUarchTraces() override
    {
        std::vector<telemetry::UarchRunTrace> out;
        waitFor(enqueue(
            [&out, this](SimHarness &) { out = utracer_.takeRuns(); }));
        return out;
    }

    void
    sync() override
    {
        if (enqueued_ > 0)
            waitFor(enqueued_);
    }

    const TimeBreakdown &
    times() override
    {
        sync();
        return harness_.times();
    }

  private:
    using Op = std::function<void(SimHarness &)>;

    /** Enqueue @p op; returns its 1-based sequence number. */
    std::uint64_t
    enqueue(Op op)
    {
        std::uint64_t seq;
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.push_back(std::move(op));
            seq = ++enqueued_;
        }
        cv_.notify_all();
        return seq;
    }

    /** Block until op @p seq (and every earlier op) completed; rethrow
     *  the first sim-thread failure, if any. */
    void
    waitFor(std::uint64_t seq)
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] { return completed_ >= seq || error_; });
        if (error_)
            std::rethrow_exception(error_);
    }

    void
    waitForTicket(Ticket ticket)
    {
        auto it = ticketSeq_.find(ticket);
        if (it == ticketSeq_.end())
            throw std::logic_error("AsyncBackend: unknown ticket");
        const std::uint64_t seq = it->second;
        ticketSeq_.erase(it);
        waitFor(seq);
    }

    void
    simLoop()
    {
        for (;;) {
            Op op;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stop, queue drained
                op = std::move(queue_.front());
                queue_.pop_front();
            }
            try {
                // After a failure the harness state is suspect; skip
                // the remaining ops and let every waiter rethrow.
                if (!error_)
                    op(harness_);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu_);
                if (!error_)
                    error_ = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++completed_;
            }
            done_cv_.notify_all();
        }
    }

    SimHarness harness_;                 ///< sim-thread confined after start
    const isa::FlatProgram *flat_ = nullptr; ///< sim-thread confined
    telemetry::UarchTracer utracer_;         ///< sim-thread confined

    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;      ///< sim thread: work available / stop
    std::condition_variable done_cv_; ///< waiters: completion advanced
    std::deque<Op> queue_;
    std::uint64_t enqueued_ = 0;  ///< caller thread only (with mu_ for queue)
    std::uint64_t completed_ = 0; ///< guarded by mu_
    bool stop_ = false;
    std::exception_ptr error_; ///< first failure; set once
    std::unordered_map<Ticket, std::uint64_t> ticketSeq_; ///< caller only
    std::unordered_map<Ticket, BatchOutput> batches_;     ///< guarded by mu_
    std::unordered_map<Ticket, SingleOutput> runs_;       ///< guarded by mu_
};

} // namespace

std::unique_ptr<SimBackend>
makeAsyncBackend(const HarnessConfig &config)
{
    return std::make_unique<AsyncBackend>(config);
}

} // namespace amulet::executor

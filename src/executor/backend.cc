#include "executor/backend.hh"

#include <stdexcept>

#include "core/signature.hh"
#include "executor/backend_async.hh"
#include "executor/backend_subprocess.hh"
#include "telemetry/telemetry.hh"

namespace amulet::executor
{

// === Backend registry ======================================================

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::InProcess:  return "inproc";
      case BackendKind::Async:      return "async";
      case BackendKind::Subprocess: return "subprocess";
    }
    return "?";
}

std::optional<BackendKind>
parseBackendKind(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    for (BackendKind kind : allBackendKinds()) {
        if (lower == backendKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::vector<BackendKind>
allBackendKinds()
{
    return {BackendKind::InProcess, BackendKind::Async,
            BackendKind::Subprocess};
}

// === Default (eager) submit/collect ========================================

SimBackend::Ticket
SimBackend::submitBatch(const std::vector<const arch::Input *> &batch,
                        const std::vector<TraceFormat> *extraFormats)
{
    const Ticket ticket = nextTicket_++;
    eagerBatches_.emplace(ticket, dispatchBatch(batch, extraFormats));
    return ticket;
}

SimBackend::BatchOutput
SimBackend::collectBatch(Ticket ticket)
{
    auto it = eagerBatches_.find(ticket);
    if (it == eagerBatches_.end())
        throw std::logic_error("SimBackend: unknown batch ticket");
    BatchOutput out = std::move(it->second);
    eagerBatches_.erase(it);
    return out;
}

SimBackend::Ticket
SimBackend::submitRun(const arch::Input &input,
                      const std::vector<TraceFormat> *extraFormats)
{
    const Ticket ticket = nextTicket_++;
    eagerRuns_.emplace(ticket, runOne(input, extraFormats));
    return ticket;
}

SimBackend::SingleOutput
SimBackend::collectRun(Ticket ticket)
{
    auto it = eagerRuns_.find(ticket);
    if (it == eagerRuns_.end())
        throw std::logic_error("SimBackend: unknown run ticket");
    SingleOutput out = std::move(it->second);
    eagerRuns_.erase(it);
    return out;
}

// === InProcessBackend ======================================================

InProcessBackend::InProcessBackend(const HarnessConfig &config)
    : harness_(config)
{
}

void
InProcessBackend::loadProgram(const isa::Program &, const isa::FlatProgram &flat)
{
    flat_ = &flat;
    harness_.loadProgram(&flat);
}

UarchContext
InProcessBackend::saveContext()
{
    return harness_.saveContext();
}

void
InProcessBackend::restoreContext(const UarchContext &ctx)
{
    telemetry::SpanScope span(telemetry_, "op.restoreContext");
    harness_.restoreContext(ctx);
}

SimBackend::BatchOutput
InProcessBackend::dispatchBatch(const std::vector<const arch::Input *> &batch,
                                const std::vector<TraceFormat> *extraFormats)
{
    telemetry::SpanScope span(telemetry_, "op.dispatchBatch");
    return harness_.runBatch(batch, extraFormats);
}

SimBackend::SingleOutput
InProcessBackend::runOne(const arch::Input &input,
                         const std::vector<TraceFormat> *extraFormats)
{
    telemetry::SpanScope span(telemetry_, "op.runOne");
    SingleOutput out;
    SimHarness::RunOutput run = harness_.runInput(input);
    out.trace = std::move(run.trace);
    out.hitCycleCap = run.run.hitCycleCap;
    if (extraFormats) {
        out.extras.reserve(extraFormats->size());
        for (TraceFormat fmt : *extraFormats)
            out.extras.push_back(harness_.extractExtra(fmt));
    }
    return out;
}

std::string
InProcessBackend::classify(const arch::Input &inputA,
                           const arch::Input &inputB,
                           const UarchContext &ctxA, const UarchContext &ctxB)
{
    if (!flat_)
        throw std::logic_error("InProcessBackend: classify with no "
                               "loaded program");
    telemetry::SpanScope span(telemetry_, "op.classify");
    return core::classifyViolation(harness_, *flat_, inputA, inputB, ctxA,
                                   ctxB);
}

void
InProcessBackend::setTelemetry(telemetry::TelemetrySink *sink)
{
    telemetry_ = sink;
    // The harness shares this backend's thread, so it can share the
    // sink (sim.inputLatencySec histogram).
    harness_.setTelemetry(sink);
}

void
InProcessBackend::setUarchTracing(bool on)
{
    harness_.setUarchTracer(on ? &utracer_ : nullptr);
}

std::vector<telemetry::UarchRunTrace>
InProcessBackend::takeUarchTraces()
{
    return utracer_.takeRuns();
}

// === Factory ===============================================================

std::unique_ptr<SimBackend>
makeBackend(BackendKind kind, const HarnessConfig &config,
            const BackendOptions &options)
{
    switch (kind) {
      case BackendKind::InProcess:
        return std::make_unique<InProcessBackend>(config);
      case BackendKind::Async:
        return makeAsyncBackend(config);
      case BackendKind::Subprocess:
        return makeSubprocessBackend(config, options);
    }
    throw std::logic_error("makeBackend: unknown backend kind");
}

} // namespace amulet::executor

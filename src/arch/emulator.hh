/**
 * @file
 * Reference architectural emulator (the Unicorn substitute).
 *
 * Executes a flattened test program instruction-by-instruction on an
 * ArchState, exposing per-step effects for observation by the leakage
 * model, plus checkpoint/rollback support so the model can explore
 * mispredicted paths (CT-COND) with an undo journal instead of copying
 * memory.
 */

#ifndef AMULET_ARCH_EMULATOR_HH
#define AMULET_ARCH_EMULATOR_HH

#include <cstdint>
#include <vector>

#include "arch/arch_state.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace amulet::arch
{

/** Effects of the most recently executed instruction. */
struct StepEffects
{
    Addr pc = 0;
    std::size_t idx = 0;
    bool didLoad = false;
    bool didStore = false;
    Addr memAddr = 0;
    unsigned memSize = 0;
    std::uint64_t loadValue = 0;   ///< value read (pre-RMW for RMW ops)
    bool isBranch = false;
    bool branchTaken = false;
    Addr branchTarget = 0;         ///< resolved next PC for branches
    bool halted = false;
    /** Registers read, one bit per isa::regIndex. Conservative: the
     *  destination's prior value counts as read even for plain
     *  overwrites (MOV), so a "not read" bit is a guarantee. */
    std::uint32_t regsRead = 0;
    /** Registers actually written back (exact). */
    std::uint32_t regsWritten = 0;
};

/**
 * Cheap point-in-time capture of an emulator: the CPU state by value
 * plus a watermark into the dirty-byte journal (enableJournal() mode),
 * so restoring costs O(bytes written since capture), not O(sandbox).
 * Valid for the emulator it was taken from, while every journal entry
 * up to the watermark is still intact (restore() truncates the journal,
 * invalidating snapshots taken after the restored one).
 */
struct ArchSnapshot
{
    std::array<RegVal, isa::kNumRegs> regs{};
    isa::Flags flags;
    std::size_t nextIdx = 0;
    bool halted = false;
    std::size_t journalMark = 0;
};

/** Deterministic architectural executor with speculation checkpoints. */
class Emulator
{
  public:
    /**
     * @param prog  flattened program (must outlive the emulator)
     * @param state initial architectural state (copied in)
     */
    Emulator(const isa::FlatProgram &prog, ArchState state);

    /** Execute one instruction. Returns false once halted. */
    bool step();

    /** Run to completion (or until @p max_steps). Returns steps taken. */
    std::size_t run(std::size_t max_steps = kDefaultMaxSteps);

    /** Effects of the last step(). */
    const StepEffects &lastStep() const { return last_; }

    bool halted() const { return halted_; }

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }

    const isa::FlatProgram &program() const { return prog_; }

    /** @name Speculative exploration (leakage-model support)
     *  Checkpoints nest; stores made while any checkpoint is active are
     *  journaled and undone on rollback. */
    /// @{
    void pushCheckpoint();
    void rollbackCheckpoint();
    unsigned checkpointDepth() const
    {
        return static_cast<unsigned>(checkpoints_.size());
    }
    /// @}

    /** Force the next instruction index (used to follow a wrong path). */
    void redirect(std::size_t idx);

    /** @name Snapshot / fork (contract-trace memoization support)
     *  With the journal enabled every committed store is journaled too
     *  (not only stores under a speculation checkpoint), which makes a
     *  snapshot just the CPU state plus a journal watermark. Snapshots
     *  must be taken and restored at checkpoint depth 0. */
    /// @{
    /** Journal all stores from now on. Call once, before stepping. */
    void enableJournal();
    bool journalEnabled() const { return journalAll_; }
    ArchSnapshot snapshot() const;
    /** Undo stores made since @p snap, then restore its CPU state. */
    void restore(const ArchSnapshot &snap);
    /** Restore only the CPU side of @p snap (memory untouched). */
    void restoreCpu(const ArchSnapshot &snap);
    /** Undo the whole journal: memory as right after construction. */
    void rewindAllWrites();
    /** Journaled single-byte store (fork-time divergence patching). */
    void pokeByte(Addr addr, std::uint8_t value);
    std::size_t journalSize() const { return journal_.size(); }
    /// @}

    /** Hard cap on architectural steps (programs are DAGs, so this is a
     *  safety net, not a semantic limit). */
    static constexpr std::size_t kDefaultMaxSteps = 100000;

  private:
    struct Checkpoint
    {
        std::array<RegVal, isa::kNumRegs> regs;
        isa::Flags flags;
        std::size_t nextIdx;
        bool halted;
        std::size_t journalMark;
    };

    struct JournalEntry
    {
        Addr addr;
        std::uint8_t oldByte;
    };

    void memWrite(Addr addr, unsigned size, std::uint64_t value);
    void undoJournalTo(std::size_t mark);

    const isa::FlatProgram &prog_;
    ArchState state_;
    StepEffects last_;
    bool halted_ = false;
    bool journalAll_ = false;
    std::vector<Checkpoint> checkpoints_;
    std::vector<JournalEntry> journal_;
};

} // namespace amulet::arch

#endif // AMULET_ARCH_EMULATOR_HH

/**
 * @file
 * Reference architectural emulator (the Unicorn substitute).
 *
 * Executes a flattened test program instruction-by-instruction on an
 * ArchState, exposing per-step effects for observation by the leakage
 * model, plus checkpoint/rollback support so the model can explore
 * mispredicted paths (CT-COND) with an undo journal instead of copying
 * memory.
 */

#ifndef AMULET_ARCH_EMULATOR_HH
#define AMULET_ARCH_EMULATOR_HH

#include <cstdint>
#include <vector>

#include "arch/arch_state.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace amulet::arch
{

/** Effects of the most recently executed instruction. */
struct StepEffects
{
    Addr pc = 0;
    std::size_t idx = 0;
    bool didLoad = false;
    bool didStore = false;
    Addr memAddr = 0;
    unsigned memSize = 0;
    std::uint64_t loadValue = 0;   ///< value read (pre-RMW for RMW ops)
    bool isBranch = false;
    bool branchTaken = false;
    Addr branchTarget = 0;         ///< resolved next PC for branches
    bool halted = false;
};

/** Deterministic architectural executor with speculation checkpoints. */
class Emulator
{
  public:
    /**
     * @param prog  flattened program (must outlive the emulator)
     * @param state initial architectural state (copied in)
     */
    Emulator(const isa::FlatProgram &prog, ArchState state);

    /** Execute one instruction. Returns false once halted. */
    bool step();

    /** Run to completion (or until @p max_steps). Returns steps taken. */
    std::size_t run(std::size_t max_steps = kDefaultMaxSteps);

    /** Effects of the last step(). */
    const StepEffects &lastStep() const { return last_; }

    bool halted() const { return halted_; }

    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }

    const isa::FlatProgram &program() const { return prog_; }

    /** @name Speculative exploration (leakage-model support)
     *  Checkpoints nest; stores made while any checkpoint is active are
     *  journaled and undone on rollback. */
    /// @{
    void pushCheckpoint();
    void rollbackCheckpoint();
    unsigned checkpointDepth() const
    {
        return static_cast<unsigned>(checkpoints_.size());
    }
    /// @}

    /** Force the next instruction index (used to follow a wrong path). */
    void redirect(std::size_t idx);

    /** Hard cap on architectural steps (programs are DAGs, so this is a
     *  safety net, not a semantic limit). */
    static constexpr std::size_t kDefaultMaxSteps = 100000;

  private:
    struct Checkpoint
    {
        std::array<RegVal, isa::kNumRegs> regs;
        isa::Flags flags;
        std::size_t nextIdx;
        bool halted;
        std::size_t journalMark;
    };

    struct JournalEntry
    {
        Addr addr;
        std::uint8_t oldByte;
    };

    void memWrite(Addr addr, unsigned size, std::uint64_t value);

    const isa::FlatProgram &prog_;
    ArchState state_;
    StepEffects last_;
    bool halted_ = false;
    std::vector<Checkpoint> checkpoints_;
    std::vector<JournalEntry> journal_;
};

} // namespace amulet::arch

#endif // AMULET_ARCH_EMULATOR_HH

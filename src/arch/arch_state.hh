/**
 * @file
 * Architectural machine state: registers, flags, memory, and next
 * instruction index. Shared between the reference emulator and the
 * simulator's committed state.
 */

#ifndef AMULET_ARCH_ARCH_STATE_HH
#define AMULET_ARCH_ARCH_STATE_HH

#include <array>

#include "arch/input.hh"
#include "common/types.hh"
#include "isa/flags.hh"
#include "isa/program.hh"
#include "isa/reg.hh"
#include "mem/address_map.hh"
#include "mem/memory_image.hh"

namespace amulet::arch
{

/** Complete architectural state. */
struct ArchState
{
    std::array<RegVal, isa::kNumRegs> regs{};
    isa::Flags flags;
    std::size_t nextIdx = 0; ///< index of the next instruction to execute
    mem::MemoryImage mem;

    RegVal reg(isa::Reg r) const { return regs[isa::regIndex(r)]; }
    void setReg(isa::Reg r, RegVal v) { regs[isa::regIndex(r)] = v; }

    /**
     * Load an input: registers and flags from the input, the sandbox base
     * register pinned to the layout's sandbox, RSP zeroed, sandbox bytes
     * written to memory, and the instruction pointer reset.
     */
    void
    loadInput(const Input &input, const mem::AddressMap &map)
    {
        regs = input.regs;
        setReg(isa::kSandboxBaseReg, map.sandboxBase);
        setReg(isa::Reg::Rsp, 0);
        flags = isa::Flags::unpack(input.flagsByte);
        nextIdx = 0;
        if (!input.sandbox.empty())
            mem.writeBytes(map.sandboxBase, input.sandbox.data(),
                           input.sandbox.size());
    }

    /** Effective address of a memory operand. */
    Addr
    effectiveAddr(const isa::MemRef &m) const
    {
        Addr a = reg(m.base) + static_cast<std::int64_t>(m.disp);
        if (m.hasIndex)
            a += reg(m.index);
        return a;
    }
};

} // namespace amulet::arch

#endif // AMULET_ARCH_ARCH_STATE_HH

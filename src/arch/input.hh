/**
 * @file
 * Test input: the architectural initialization of one test-case run.
 *
 * Following Revizor/AMuLeT, an input is a binary blob that initializes the
 * test program's registers, flags, and memory sandbox (§2.4). A (program,
 * input) pair forms a test case.
 */

#ifndef AMULET_ARCH_INPUT_HH
#define AMULET_ARCH_INPUT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/reg.hh"
#include "mem/address_map.hh"

namespace amulet::arch
{

/** Architectural initialization for one run. */
struct Input
{
    /** Initial GPR values (R14/RSP are overridden at load time). */
    std::array<RegVal, isa::kNumRegs> regs{};

    /** Initial packed status flags. */
    std::uint8_t flagsByte = 0;

    /** Initial sandbox contents (sandboxPages * 4096 bytes). */
    std::vector<std::uint8_t> sandbox;

    /** Identifier for reports (generation order). */
    std::uint64_t id = 0;

    bool
    operator==(const Input &other) const
    {
        return regs == other.regs && flagsByte == other.flagsByte &&
               sandbox == other.sandbox;
    }
};

} // namespace amulet::arch

#endif // AMULET_ARCH_INPUT_HH

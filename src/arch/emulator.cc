#include "arch/emulator.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "isa/semantics.hh"

namespace amulet::arch
{

using isa::Inst;
using isa::Op;
using isa::OpndKind;

Emulator::Emulator(const isa::FlatProgram &prog, ArchState state)
    : prog_(prog), state_(std::move(state))
{
}

void
Emulator::memWrite(Addr addr, unsigned size, std::uint64_t value)
{
    if (journalAll_ || !checkpoints_.empty()) {
        for (unsigned i = 0; i < size; ++i)
            journal_.push_back({addr + i, state_.mem.readByte(addr + i)});
    }
    state_.mem.write(addr, size, value);
}

namespace
{
constexpr std::uint32_t
regBit(isa::Reg r)
{
    return std::uint32_t{1} << isa::regIndex(r);
}
} // namespace

bool
Emulator::step()
{
    if (halted_)
        return false;

    last_ = StepEffects{};
    const std::size_t idx = state_.nextIdx;
    assert(idx < prog_.numInsts());
    const Inst &inst = prog_.inst(idx);
    last_.pc = prog_.pcOf(idx);
    last_.idx = idx;

    std::size_t next = idx + 1;

    switch (inst.op) {
      case Op::Halt:
        halted_ = true;
        last_.halted = true;
        state_.nextIdx = idx;
        return false;
      case Op::Nop:
      case Op::Fence:
        break;
      case Op::Jmp:
        last_.isBranch = true;
        last_.branchTaken = true;
        next = prog_.targetIdx(idx);
        break;
      case Op::Jcc: {
        last_.isBranch = true;
        last_.branchTaken = condEval(inst.cond, state_.flags);
        if (last_.branchTaken)
            next = prog_.targetIdx(idx);
        break;
      }
      case Op::Loopne: {
        last_.isBranch = true;
        last_.regsRead = regBit(isa::Reg::Rcx);
        last_.regsWritten = regBit(isa::Reg::Rcx);
        const RegVal rcx = state_.reg(isa::Reg::Rcx) - 1;
        state_.setReg(isa::Reg::Rcx, rcx);
        last_.branchTaken = rcx != 0 && !state_.flags.zf;
        if (last_.branchTaken)
            next = prog_.targetIdx(idx);
        break;
      }
      default: {
        // Data instruction: resolve operands, evaluate, write back.
        const bool has_mem = inst.srcKind == OpndKind::Mem ||
                             inst.dstKind == OpndKind::Mem;
        Addr addr = 0;
        if (has_mem) {
            addr = state_.effectiveAddr(inst.mem);
            last_.memAddr = addr;
            last_.memSize = inst.width;
            last_.regsRead |= regBit(inst.mem.base);
            if (inst.mem.hasIndex)
                last_.regsRead |= regBit(inst.mem.index);
        }

        std::uint64_t src = 0;
        switch (inst.srcKind) {
          case OpndKind::Reg:
            src = truncateToSize(state_.reg(inst.src), inst.width);
            last_.regsRead |= regBit(inst.src);
            break;
          case OpndKind::Imm:
            src = static_cast<std::uint64_t>(inst.imm);
            break;
          case OpndKind::Mem:
            src = state_.mem.read(addr, inst.width);
            last_.didLoad = true;
            last_.loadValue = src;
            break;
          case OpndKind::None:
            break;
        }

        std::uint64_t dst_old = 0;
        if (inst.dstKind == OpndKind::Reg) {
            dst_old = state_.reg(inst.dst);
            last_.regsRead |= regBit(inst.dst);
        } else if (inst.dstKind == OpndKind::Mem) {
            dst_old = state_.mem.read(addr, inst.width);
            if (inst.isRmw()) {
                last_.didLoad = true;
                last_.loadValue = dst_old;
            }
        }

        const isa::ExecResult res =
            isa::evalOp(inst, dst_old, src, addr, state_.flags);

        if (res.writesFlags)
            state_.flags = res.flags;
        if (res.writesDst) {
            if (inst.dstKind == OpndKind::Reg) {
                state_.setReg(inst.dst, res.value);
                last_.regsWritten |= regBit(inst.dst);
            } else if (inst.dstKind == OpndKind::Mem) {
                memWrite(addr, inst.width, res.value);
                last_.didStore = true;
            }
        }
        break;
      }
    }

    if (last_.isBranch)
        last_.branchTarget = prog_.pcOf(next);
    state_.nextIdx = next;
    return true;
}

std::size_t
Emulator::run(std::size_t max_steps)
{
    std::size_t steps = 0;
    while (steps < max_steps && step())
        ++steps;
    return steps;
}

void
Emulator::pushCheckpoint()
{
    checkpoints_.push_back({state_.regs, state_.flags, state_.nextIdx,
                            halted_, journal_.size()});
}

void
Emulator::rollbackCheckpoint()
{
    assert(!checkpoints_.empty());
    const Checkpoint &cp = checkpoints_.back();
    // Undo journaled stores in reverse order.
    undoJournalTo(cp.journalMark);
    state_.regs = cp.regs;
    state_.flags = cp.flags;
    state_.nextIdx = cp.nextIdx;
    halted_ = cp.halted;
    checkpoints_.pop_back();
}

void
Emulator::enableJournal()
{
    assert(journal_.empty() && checkpoints_.empty());
    journalAll_ = true;
    journal_.reserve(1024);
    checkpoints_.reserve(8);
}

void
Emulator::undoJournalTo(std::size_t mark)
{
    for (std::size_t i = journal_.size(); i > mark; --i) {
        const JournalEntry &e = journal_[i - 1];
        state_.mem.writeByte(e.addr, e.oldByte);
    }
    journal_.resize(mark);
}

ArchSnapshot
Emulator::snapshot() const
{
    assert(journalAll_ && checkpoints_.empty());
    return {state_.regs, state_.flags, state_.nextIdx, halted_,
            journal_.size()};
}

void
Emulator::restore(const ArchSnapshot &snap)
{
    assert(checkpoints_.empty());
    assert(snap.journalMark <= journal_.size());
    undoJournalTo(snap.journalMark);
    restoreCpu(snap);
}

void
Emulator::restoreCpu(const ArchSnapshot &snap)
{
    state_.regs = snap.regs;
    state_.flags = snap.flags;
    state_.nextIdx = snap.nextIdx;
    halted_ = snap.halted;
}

void
Emulator::rewindAllWrites()
{
    assert(checkpoints_.empty());
    undoJournalTo(0);
}

void
Emulator::pokeByte(Addr addr, std::uint8_t value)
{
    memWrite(addr, 1, value);
}

void
Emulator::redirect(std::size_t idx)
{
    assert(idx < prog_.numInsts());
    state_.nextIdx = idx;
    halted_ = false;
}

} // namespace amulet::arch

#include "pipeline/stages.hh"

namespace amulet::pipeline
{

void
FilterStage::run(StageContext &ctx, ProgramPlan &plan)
{
    const auto t0 = Clock::now();
    core::ProgramOutcome &out = plan.outcome;

    // Equivalence classes are a pure function of the contract traces,
    // so they are computable before any simulator run — the whole point
    // of filtering here rather than after execution.
    plan.classes = core::groupByCTrace(plan.ctraces);
    out.effectiveClasses = plan.classes.effectiveClasses();

    plan.executeClasses.clear();
    std::vector<std::size_t> singletons;
    for (std::size_t c = 0; c < plan.classes.classes.size(); ++c) {
        if (plan.classes.classes[c].size() >= 2)
            plan.executeClasses.push_back(c);
        else
            singletons.push_back(c);
    }

    if (ctx.cfg.filterIneffective) {
        // Singleton classes can never form a candidate pair; their
        // simulator runs are pure cost.
        for (std::size_t c : singletons)
            out.filteredTestCases += plan.classes.classes[c].size();
    } else {
        // Filtering off: singletons still execute, but after every
        // effective class. The executed prefix — the only runs any
        // later stage reads — is therefore identical in both modes,
        // which is what makes filtering outcome-preserving.
        plan.executeClasses.insert(plan.executeClasses.end(),
                                   singletons.begin(), singletons.end());
    }
    out.filterSec += secondsSince(t0);

    if (plan.executeClasses.empty()) {
        // Nothing can witness a relational violation; skip the
        // simulator entirely. The outcome is complete and
        // deterministic: the program counts, its test cases were all
        // filtered, and it is reported as skipped.
        out.ran = true;
        out.testCases = plan.inputs.size();
        if (out.filteredTestCases > 0)
            out.skippedProgram = true;
        plan.halt = true;
    }
}

} // namespace amulet::pipeline

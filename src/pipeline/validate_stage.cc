#include "pipeline/stages.hh"

namespace amulet::pipeline
{

namespace
{

/**
 * Per-format tallies for the all-formats mode (Table 5). A same-class
 * difference only counts if it persists when the pair is re-run under a
 * common μarch context. Without this, context-sensitive formats (BP
 * state above all) flag nearly every input pair, which is exactly the
 * extra-validation cost Table 5 reports.
 */
void
tallyFormats(StageContext &ctx, ProgramPlan &plan)
{
    const auto all_formats = executor::allTraceFormats();
    core::ProgramOutcome &out = plan.outcome;
    const std::size_t baseline_idx = 0; // L1dTlb is first
    for (const auto &cls : plan.classes.classes) {
        if (cls.size() < 2)
            continue;
        const std::size_t rep = cls.front();
        for (std::size_t i = 1; i < cls.size(); ++i) {
            const std::size_t idx = cls[i];
            bool any_diff = false;
            for (std::size_t f = 0; f < all_formats.size(); ++f) {
                if (!(plan.extraTraces[idx][f] ==
                      plan.extraTraces[rep][f])) {
                    any_diff = true;
                    break;
                }
            }
            if (!any_diff)
                continue;
            // One validation pair for all formats at once.
            ctx.harness.restoreContext(plan.contexts[idx]);
            ctx.harness.runInput(plan.inputs[rep]);
            std::vector<executor::UTrace> rep_under_idx;
            for (auto fmt : all_formats)
                rep_under_idx.push_back(ctx.harness.extractExtra(fmt));
            ctx.harness.restoreContext(plan.contexts[rep]);
            ctx.harness.runInput(plan.inputs[idx]);
            std::vector<executor::UTrace> idx_under_rep;
            for (auto fmt : all_formats)
                idx_under_rep.push_back(ctx.harness.extractExtra(fmt));
            out.validationRuns += 2;

            auto confirmed = [&](std::size_t f) {
                if (plan.extraTraces[idx][f] == plan.extraTraces[rep][f])
                    return false;
                return !(rep_under_idx[f] == plan.extraTraces[idx][f]) ||
                       !(idx_under_rep[f] == plan.extraTraces[rep][f]);
            };
            const bool base_confirmed = confirmed(baseline_idx);
            for (std::size_t f = 0; f < all_formats.size(); ++f) {
                if (!confirmed(f))
                    continue;
                core::FormatTally &tally =
                    out.formatTallies[all_formats[f]];
                ++tally.violatingTestCases;
                if (base_confirmed)
                    ++tally.coveredByBaseline;
            }
        }
    }
}

} // namespace

void
ValidateStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    if (ctx.cfg.collectAllFormats)
        tallyFormats(ctx, plan);

    for (const core::CandidatePair &cand : plan.analysis.candidates) {
        ++out.candidateViolations;
        // Re-run each input under the other's starting μarch context
        // (§3.2). The violation is confirmed when the inputs remain
        // distinguishable under at least one *common* context: a pure
        // initial-context artifact makes both same-context pairs
        // equal, whereas a genuine leak that depends on predictor
        // state (e.g. Spectre-v4 under a trained memory-dependence
        // predictor) still differs under one of them.
        ctx.harness.restoreContext(plan.contexts[cand.b]);
        const auto a_under_b = ctx.harness.runInput(plan.inputs[cand.a]);
        ctx.harness.restoreContext(plan.contexts[cand.a]);
        const auto b_under_a = ctx.harness.runInput(plan.inputs[cand.b]);
        out.validationRuns += 2;
        const bool persists =
            !(a_under_b.trace == plan.traces[cand.b]) ||
            !(b_under_a.trace == plan.traces[cand.a]);
        if (!persists)
            continue;

        ++out.confirmedViolations;
        const double t_detect = secondsSince(ctx.t0);
        if (out.firstDetectSeconds < 0)
            out.firstDetectSeconds = t_detect;
        plan.confirmed.push_back({cand.a, cand.b, t_detect});
        if (ctx.cfg.stopAtFirstViolation)
            break;
    }
}

} // namespace amulet::pipeline

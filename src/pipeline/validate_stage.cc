#include "pipeline/stages.hh"

namespace amulet::pipeline
{

namespace
{

/**
 * Per-format tallies for the all-formats mode (Table 5). A same-class
 * difference only counts if it persists when the pair is re-run under a
 * common μarch context. Without this, context-sensitive formats (BP
 * state above all) flag nearly every input pair, which is exactly the
 * extra-validation cost Table 5 reports.
 */
void
tallyFormats(StageContext &ctx, ProgramPlan &plan)
{
    const auto all_formats = executor::allTraceFormats();
    core::ProgramOutcome &out = plan.outcome;
    const std::size_t baseline_idx = 0; // L1dTlb is first
    for (const auto &cls : plan.classes.classes) {
        if (cls.size() < 2)
            continue;
        const std::size_t rep = cls.front();
        for (std::size_t i = 1; i < cls.size(); ++i) {
            const std::size_t idx = cls[i];
            bool any_diff = false;
            for (std::size_t f = 0; f < all_formats.size(); ++f) {
                if (!executor::tracesEqual(plan.extraTraces[idx][f],
                                           plan.extraTraces[rep][f])) {
                    any_diff = true;
                    break;
                }
            }
            if (!any_diff)
                continue;
            // One validation pair for all formats at once.
            ctx.backend.restoreContext(plan.contexts[idx]);
            const auto rep_under_idx =
                ctx.backend.runOne(plan.inputs[rep], &all_formats).extras;
            ctx.backend.restoreContext(plan.contexts[rep]);
            const auto idx_under_rep =
                ctx.backend.runOne(plan.inputs[idx], &all_formats).extras;
            out.validationRuns += 2;

            auto confirmed = [&](std::size_t f) {
                if (executor::tracesEqual(plan.extraTraces[idx][f],
                                          plan.extraTraces[rep][f]))
                    return false;
                return !executor::tracesEqual(rep_under_idx[f],
                                              plan.extraTraces[idx][f]) ||
                       !executor::tracesEqual(idx_under_rep[f],
                                              plan.extraTraces[rep][f]);
            };
            const bool base_confirmed = confirmed(baseline_idx);
            for (std::size_t f = 0; f < all_formats.size(); ++f) {
                if (!confirmed(f))
                    continue;
                core::FormatTally &tally =
                    out.formatTallies[all_formats[f]];
                ++tally.violatingTestCases;
                if (base_confirmed)
                    ++tally.coveredByBaseline;
            }
        }
    }
}

} // namespace

void
ValidateStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    if (ctx.cfg.collectAllFormats)
        tallyFormats(ctx, plan);

    // Re-run each candidate's inputs under the other's starting μarch
    // context (§3.2). The violation is confirmed when the inputs remain
    // distinguishable under at least one *common* context: a pure
    // initial-context artifact makes both same-context pairs equal,
    // whereas a genuine leak that depends on predictor state (e.g.
    // Spectre-v4 under a trained memory-dependence predictor) still
    // differs under one of them.
    //
    // On a pipelined backend all re-runs are submitted up front — the
    // restore/run operation sequence the simulator sees is exactly the
    // sequential one, but verdict computation overlaps execution. Under
    // stopAtFirstViolation the sequential path is kept: it stops
    // submitting at the first confirmation.
    const bool pipelined = ctx.backend.caps().pipelined &&
                           !ctx.cfg.stopAtFirstViolation;

    std::vector<std::pair<executor::SimBackend::Ticket,
                          executor::SimBackend::Ticket>>
        tickets;
    if (pipelined) {
        tickets.reserve(plan.analysis.candidates.size());
        for (const core::CandidatePair &cand : plan.analysis.candidates) {
            ctx.backend.restoreContext(plan.contexts[cand.b]);
            const auto a_t =
                ctx.backend.submitRun(plan.inputs[cand.a], nullptr);
            ctx.backend.restoreContext(plan.contexts[cand.a]);
            const auto b_t =
                ctx.backend.submitRun(plan.inputs[cand.b], nullptr);
            tickets.emplace_back(a_t, b_t);
        }
    }

    for (std::size_t c = 0; c < plan.analysis.candidates.size(); ++c) {
        const core::CandidatePair &cand = plan.analysis.candidates[c];
        ++out.candidateViolations;
        executor::SimBackend::SingleOutput a_under_b;
        executor::SimBackend::SingleOutput b_under_a;
        if (pipelined) {
            a_under_b = ctx.backend.collectRun(tickets[c].first);
            b_under_a = ctx.backend.collectRun(tickets[c].second);
        } else {
            ctx.backend.restoreContext(plan.contexts[cand.b]);
            a_under_b = ctx.backend.runOne(plan.inputs[cand.a], nullptr);
            ctx.backend.restoreContext(plan.contexts[cand.a]);
            b_under_a = ctx.backend.runOne(plan.inputs[cand.b], nullptr);
        }
        out.validationRuns += 2;
        const bool persists =
            !executor::tracesEqual(a_under_b.trace, plan.traces[cand.b]) ||
            !executor::tracesEqual(b_under_a.trace, plan.traces[cand.a]);
        if (!persists)
            continue;

        ++out.confirmedViolations;
        const double t_detect = secondsSince(ctx.t0);
        if (out.firstDetectSeconds < 0)
            out.firstDetectSeconds = t_detect;
        plan.confirmed.push_back({cand.a, cand.b, t_detect});
        if (ctx.cfg.stopAtFirstViolation)
            break;
    }
}

} // namespace amulet::pipeline

/**
 * @file
 * ProgramPipeline: an ordered, instrumentable list of stages.
 *
 * The standard() pipeline reproduces the AMuLeT fuzzing loop; callers
 * may also compose their own stage order (reorder, skip, inject) — the
 * architecture tests do exactly that. An observer hook reports each
 * stage's wall time per program, which is how per-stage breakdowns and
 * future tracing backends attach without touching stage code.
 */

#ifndef AMULET_PIPELINE_PIPELINE_HH
#define AMULET_PIPELINE_PIPELINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "pipeline/stage.hh"

namespace amulet::pipeline
{

/** An ordered stage list, reusable across programs. */
class ProgramPipeline
{
  public:
    /** Called after each stage with its wall time for this program. */
    using Observer = std::function<void(const Stage &stage,
                                        const ProgramPlan &plan,
                                        double seconds)>;

    /** Empty pipeline; append stages in execution order. */
    ProgramPipeline() = default;

    /** The paper's loop: TestGen → CTrace → Filter → Execute →
     *  Analyze → Validate → Record. */
    static ProgramPipeline standard();

    /** @name The backend seam split
     * standardPrefix() is everything that needs no simulator (TestGen →
     * CTrace → Filter); standardSuffix() is everything from the first
     * backend dispatch on (Execute → Analyze → Validate → Record).
     * Running prefix then suffix ≡ standard(); a pipelined ShardExecutor
     * runs the next program's prefix while the simulation thread works
     * through the current program's suffix dispatches.
     */
    /// @{
    static ProgramPipeline standardPrefix();
    static ProgramPipeline standardSuffix();
    /// @}

    /** Append a stage at the end of the pipeline. */
    void append(std::unique_ptr<Stage> stage);

    /** Instrument every subsequent run() (pass nullptr to detach). */
    void setObserver(Observer observer) { observer_ = std::move(observer); }

    std::size_t size() const { return stages_.size(); }
    const Stage &stage(std::size_t i) const { return *stages_[i]; }

    /**
     * Run @p plan through the stages in order, stopping early when a
     * stage sets plan.halt. The plan's outcome is final on return.
     */
    void run(StageContext &ctx, ProgramPlan &plan) const;

  private:
    std::vector<std::unique_ptr<Stage>> stages_;
    Observer observer_;
};

} // namespace amulet::pipeline

#endif // AMULET_PIPELINE_PIPELINE_HH

/**
 * @file
 * The seven standard stages of the per-program pipeline (Figure 1,
 * §3.2). See src/pipeline/README.md for the stage-by-stage contract.
 */

#ifndef AMULET_PIPELINE_STAGES_HH
#define AMULET_PIPELINE_STAGES_HH

#include "pipeline/stage.hh"

namespace amulet::pipeline
{

/** Generate the test program and flatten it to its code base. */
class TestGenStage : public Stage
{
  public:
    const char *name() const override { return "testgen"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

/**
 * Generate base inputs and contract-preserving siblings (including
 * model-verified register mutations) and collect one contract trace per
 * input on the leakage model. No simulator involvement.
 */
class CTraceStage : public Stage
{
  public:
    const char *name() const override { return "ctrace"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

/**
 * Ineffective-test-case filtering (§3.2): group inputs into contract
 * equivalence classes — computable before any simulator run — and drop
 * inputs in singleton classes, which can never form a candidate pair.
 * With zero effective classes the simulator is skipped entirely
 * (plan.halt). With `CampaignConfig::filterIneffective` off, singleton
 * classes still execute, but after every effective class, so the
 * μarch state evolution of the inputs that matter is identical in both
 * modes — the basis of the filter equivalence contract (README).
 */
class FilterStage : public Stage
{
  public:
    const char *name() const override { return "filter"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

/**
 * Run the planned classes on the executor backend, one batch dispatch
 * per equivalence class, scattering traces and pre-run contexts into
 * the plan's per-input slots. Aborts the program (skippedProgram) when
 * an input hits the cycle cap.
 *
 * The dispatch is split into submit (enqueue every class batch on the
 * backend) and collect (run() drains the tickets): a pipelined driver —
 * ShardExecutor with a pipelined backend — calls submit() right after
 * FilterStage and prepares the *next* program's test cases while the
 * simulation thread executes these batches. run() on an unsubmitted
 * plan instead dispatches synchronously class by class (a cycle-cap
 * hit then aborts before the remaining classes run), so the stage
 * stays drop-in for custom pipelines.
 */
class ExecuteStage : public Stage
{
  public:
    const char *name() const override { return "execute"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;

    /** Enqueue every planned class batch on the backend. */
    static void submit(StageContext &ctx, ProgramPlan &plan);
};

/** Relational analysis: candidate pairs within equivalence classes. */
class AnalyzeStage : public Stage
{
  public:
    const char *name() const override { return "analyze"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

/**
 * Validate candidates by context-swapped re-runs (§3.2) and, in
 * all-formats mode, validate per-format trace differences (Table 5).
 */
class ValidateStage : public Stage
{
  public:
    const char *name() const override { return "validate"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

/** Classify confirmed violations by signature and build records. */
class RecordStage : public Stage
{
  public:
    const char *name() const override { return "record"; }
    void run(StageContext &ctx, ProgramPlan &plan) override;
};

} // namespace amulet::pipeline

#endif // AMULET_PIPELINE_STAGES_HH

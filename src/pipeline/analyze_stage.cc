#include "pipeline/stages.hh"

namespace amulet::pipeline
{

void
AnalyzeStage::run(StageContext &, ProgramPlan &plan)
{
    // Pure relational analysis over the executed traces. Singleton
    // classes are skipped inside findCandidates, so the default-
    // constructed trace slots of filtered inputs are never read.
    plan.analysis = core::findCandidates(plan.classes, plan.traces);
    plan.outcome.violatingTestCases = plan.analysis.violatingTestCases;
}

} // namespace amulet::pipeline

#include "pipeline/stages.hh"

#include "core/generator.hh"

namespace amulet::pipeline
{

void
TestGenStage::run(StageContext &ctx, ProgramPlan &plan)
{
    const auto t0 = Clock::now();
    core::ProgramGenerator generator(ctx.cfg.gen, plan.genRng);
    plan.program = generator.generate();
    plan.flat.emplace(plan.program, ctx.cfg.harness.map.codeBase);
    plan.outcome.testGenSec += secondsSince(t0);
}

} // namespace amulet::pipeline

#include "pipeline/stages.hh"

namespace amulet::pipeline
{

namespace
{

/** Composability fallback: in a pipeline without a FilterStage the
 *  classes were never planned — execute every class rather than
 *  silently running nothing. */
void
planAllClasses(ProgramPlan &plan)
{
    plan.classes = core::groupByCTrace(plan.ctraces);
    plan.outcome.effectiveClasses = plan.classes.effectiveClasses();
    plan.executeClasses.clear();
    for (std::size_t c = 0; c < plan.classes.classes.size(); ++c)
        plan.executeClasses.push_back(c);
}

} // namespace

void
ExecuteStage::submit(StageContext &ctx, ProgramPlan &plan)
{
    const bool extras = ctx.cfg.collectAllFormats;
    const auto all_formats = executor::allTraceFormats();

    if (plan.classes.classes.empty() && !plan.inputs.empty())
        planAllClasses(plan);

    ctx.backend.loadProgram(plan.program, *plan.flat);
    // Canonical start: predictor state does not leak across programs, so
    // the outcome is independent of which worker ran the previous one.
    // Within the program, predictor state flows across the executed
    // batches exactly as AMuLeT-Opt flows it across inputs.
    ctx.backend.restoreContext(ctx.canonicalCtx);

    plan.batchTickets.clear();
    plan.batchTickets.reserve(plan.executeClasses.size());
    for (std::size_t c : plan.executeClasses) {
        const std::vector<std::size_t> &cls = plan.classes.classes[c];
        std::vector<const arch::Input *> batch;
        batch.reserve(cls.size());
        for (std::size_t idx : cls)
            batch.push_back(&plan.inputs[idx]);
        plan.batchTickets.push_back(ctx.backend.submitBatch(
            batch, extras ? &all_formats : nullptr));
    }
    plan.batchesSubmitted = true;
}

void
ExecuteStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    const bool extras = ctx.cfg.collectAllFormats;
    const auto all_formats = executor::allTraceFormats();

    plan.traces.assign(plan.inputs.size(), {});
    plan.contexts.assign(plan.inputs.size(), {});
    if (extras)
        plan.extraTraces.assign(plan.inputs.size(), {});

    auto scatter = [&](executor::SimBackend::BatchOutput &res,
                       const std::vector<std::size_t> &cls) {
        for (std::size_t i = 0; i < cls.size(); ++i) {
            plan.traces[cls[i]] = std::move(res.runs[i].trace);
            plan.contexts[cls[i]] = std::move(res.startContexts[i]);
            if (extras)
                plan.extraTraces[cls[i]] = std::move(res.extras[i]);
        }
    };

    bool aborted = false;
    if (plan.batchesSubmitted) {
        // Pipelined driver path: every class batch is already in
        // flight; collect in order. On a cycle-cap abort the remaining
        // tickets still drain (the work was dispatched), results are
        // discarded.
        for (std::size_t b = 0; b < plan.batchTickets.size(); ++b) {
            executor::SimBackend::BatchOutput res =
                ctx.backend.collectBatch(plan.batchTickets[b]);
            if (aborted)
                continue;
            if (res.hitCycleCap) {
                aborted = true;
                continue;
            }
            scatter(res, plan.classes.classes[plan.executeClasses[b]]);
        }
        plan.batchTickets.clear();
        plan.batchesSubmitted = false;
    } else {
        // Synchronous path: dispatch class by class so a cycle-cap hit
        // aborts the program before the remaining classes cost any
        // simulator time (a pipelined submit would have paid for them
        // anyway; a synchronous one must not).
        if (plan.classes.classes.empty() && !plan.inputs.empty())
            planAllClasses(plan);
        ctx.backend.loadProgram(plan.program, *plan.flat);
        ctx.backend.restoreContext(ctx.canonicalCtx);
        for (std::size_t c : plan.executeClasses) {
            const std::vector<std::size_t> &cls = plan.classes.classes[c];
            std::vector<const arch::Input *> batch;
            batch.reserve(cls.size());
            for (std::size_t idx : cls)
                batch.push_back(&plan.inputs[idx]);
            executor::SimBackend::BatchOutput res =
                ctx.backend.dispatchBatch(batch,
                                          extras ? &all_formats : nullptr);
            if (res.hitCycleCap) {
                aborted = true;
                break;
            }
            scatter(res, cls);
        }
    }

    if (aborted) {
        // Pathological program; abort it. ran stays false (its partial
        // results must not merge into campaign stats) and the skip is
        // counted, unlike in the pre-pipeline runtime.
        out.skippedProgram = true;
        plan.halt = true;
        return;
    }
    out.ran = true;
    out.testCases = plan.inputs.size();
}

} // namespace amulet::pipeline

#include "pipeline/stages.hh"

namespace amulet::pipeline
{

void
ExecuteStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    const bool extras = ctx.cfg.collectAllFormats;
    const auto all_formats = executor::allTraceFormats();

    // Composability fallback: in a pipeline without a FilterStage the
    // classes were never planned — execute every class rather than
    // silently running nothing.
    if (plan.classes.classes.empty() && !plan.inputs.empty()) {
        plan.classes = core::groupByCTrace(plan.ctraces);
        out.effectiveClasses = plan.classes.effectiveClasses();
        plan.executeClasses.clear();
        for (std::size_t c = 0; c < plan.classes.classes.size(); ++c)
            plan.executeClasses.push_back(c);
    }

    plan.traces.assign(plan.inputs.size(), {});
    plan.contexts.assign(plan.inputs.size(), {});
    if (extras)
        plan.extraTraces.assign(plan.inputs.size(), {});

    ctx.harness.loadProgram(&*plan.flat);
    // Canonical start: predictor state does not leak across programs, so
    // the outcome is independent of which worker ran the previous one.
    // Within the program, predictor state flows across the executed
    // batches exactly as AMuLeT-Opt flows it across inputs.
    ctx.harness.restoreContext(ctx.canonicalCtx);

    for (std::size_t c : plan.executeClasses) {
        const std::vector<std::size_t> &cls = plan.classes.classes[c];
        std::vector<const arch::Input *> batch;
        batch.reserve(cls.size());
        for (std::size_t idx : cls)
            batch.push_back(&plan.inputs[idx]);

        executor::SimHarness::BatchOutput res = ctx.harness.runBatch(
            batch, extras ? &all_formats : nullptr);
        if (res.hitCycleCap) {
            // Pathological program; abort it. ran stays false (its
            // partial results must not merge into campaign stats) and
            // the skip is counted, unlike in the pre-pipeline runtime.
            out.skippedProgram = true;
            plan.halt = true;
            return;
        }
        for (std::size_t i = 0; i < cls.size(); ++i) {
            plan.traces[cls[i]] = std::move(res.runs[i].trace);
            plan.contexts[cls[i]] = std::move(res.startContexts[i]);
            if (extras)
                plan.extraTraces[cls[i]] = std::move(res.extras[i]);
        }
    }
    out.ran = true;
    out.testCases = plan.inputs.size();
}

} // namespace amulet::pipeline

#include "pipeline/stages.hh"

#include "isa/disasm.hh"

namespace amulet::pipeline
{

void
RecordStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    for (const ConfirmedPair &pair : plan.confirmed) {
        std::string signature = "unclassified";
        if (ctx.cfg.collectSignatures) {
            // Event-logged re-runs happen wherever the simulator lives;
            // the backend returns only the signature string.
            signature = ctx.backend.classify(
                plan.inputs[pair.a], plan.inputs[pair.b],
                plan.contexts[pair.a], plan.contexts[pair.b]);
        }
        ++out.signatureCounts[signature];

        if (out.records.size() >= ctx.cfg.maxViolationsRecorded)
            continue;
        core::ViolationRecord rec;
        rec.defenseName =
            defense::defenseKindName(ctx.cfg.harness.defense.kind);
        rec.contractName = ctx.cfg.contract.name;
        rec.programText = isa::formatProgram(plan.program);
        rec.programIndex = plan.programIndex;
        rec.inputA = plan.inputs[pair.a];
        rec.inputB = plan.inputs[pair.b];
        rec.traceA = plan.traces[pair.a];
        rec.traceB = plan.traces[pair.b];
        rec.ctxA = plan.contexts[pair.a];
        rec.ctxB = plan.contexts[pair.b];
        rec.ctraceHash = contracts::hashCTrace(plan.ctraces[pair.a]);
        rec.signature = signature;
        rec.detectSeconds = pair.detectSeconds;
        rec.rngState = plan.streamState;
        out.records.push_back(std::move(rec));
    }
}

} // namespace amulet::pipeline

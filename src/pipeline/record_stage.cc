#include "pipeline/stages.hh"

#include <filesystem>
#include <fstream>

#include "isa/disasm.hh"
#include "telemetry/uarch_trace.hh"

namespace amulet::pipeline
{

namespace
{

/**
 * Forensics artifact: re-run a journaled violation's input pair with
 * the per-instruction pipeline tracer on and write Konata + Chrome
 * trace files under cfg.telemetry.uarchTraceDir.
 *
 * Results-invisible by construction: the re-runs restore each input's
 * saved pre-run context first (exactly what classify-style re-runs
 * do), and every later program restores the canonical context before
 * touching the simulator, so no downstream verdict, signature, or
 * record byte can observe whether this ran. Deterministic filenames
 * (program index + record ordinal) make repeated campaigns
 * re-producible; a resumed campaign skips completed programs, so
 * already-written files are simply left in place.
 */
void
writeViolationTraces(StageContext &ctx, ProgramPlan &plan,
                     const ConfirmedPair &pair, std::size_t record_idx)
{
    executor::SimBackend &backend = ctx.backend;
    backend.takeUarchTraces(); // drop anything stale
    backend.setUarchTracing(true);
    backend.restoreContext(plan.contexts[pair.a]);
    backend.runOne(plan.inputs[pair.a], nullptr);
    backend.restoreContext(plan.contexts[pair.b]);
    backend.runOne(plan.inputs[pair.b], nullptr);
    backend.setUarchTracing(false);
    std::vector<telemetry::UarchRunTrace> runs =
        backend.takeUarchTraces();
    if (runs.size() != 2)
        return; // backend could not trace; skip the artifact quietly
    runs[0].label = "inputA";
    runs[1].label = "inputB";

    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(ctx.cfg.telemetry.uarchTraceDir, ec);
    if (ec)
        return;
    const std::string stem = ctx.cfg.telemetry.uarchTraceDir + "/p" +
                             std::to_string(plan.programIndex) + "_r" +
                             std::to_string(record_idx);
    auto put = [](const std::string &path, const std::string &text) {
        std::ofstream out(path, std::ios::binary);
        out << text;
    };
    put(stem + "_A.kanata", telemetry::exportKanata(runs[0]));
    put(stem + "_B.kanata", telemetry::exportKanata(runs[1]));
    put(stem + ".pipetrace.json",
        telemetry::exportUarchChromeTrace(runs));
}

} // namespace

void
RecordStage::run(StageContext &ctx, ProgramPlan &plan)
{
    core::ProgramOutcome &out = plan.outcome;
    for (const ConfirmedPair &pair : plan.confirmed) {
        std::string signature = "unclassified";
        if (ctx.cfg.collectSignatures) {
            // Event-logged re-runs happen wherever the simulator lives;
            // the backend returns only the signature string.
            signature = ctx.backend.classify(
                plan.inputs[pair.a], plan.inputs[pair.b],
                plan.contexts[pair.a], plan.contexts[pair.b]);
        }
        ++out.signatureCounts[signature];

        if (out.records.size() >= ctx.cfg.maxViolationsRecorded)
            continue;
        core::ViolationRecord rec;
        rec.defenseName =
            defense::defenseKindName(ctx.cfg.harness.defense.kind);
        rec.contractName = ctx.cfg.contract.name;
        rec.programText = isa::formatProgram(plan.program);
        rec.programIndex = plan.programIndex;
        rec.inputA = plan.inputs[pair.a];
        rec.inputB = plan.inputs[pair.b];
        rec.traceA = plan.traces[pair.a];
        rec.traceB = plan.traces[pair.b];
        rec.ctxA = plan.contexts[pair.a];
        rec.ctxB = plan.contexts[pair.b];
        rec.ctraceHash = contracts::hashCTrace(plan.ctraces[pair.a]);
        rec.signature = signature;
        rec.detectSeconds = pair.detectSeconds;
        rec.rngState = plan.streamState;
        out.records.push_back(std::move(rec));

        if (!ctx.cfg.telemetry.uarchTraceDir.empty() &&
            ctx.backend.caps().uarchTrace) {
            writeViolationTraces(ctx, plan, pair,
                                 out.records.size() - 1);
        }
    }
}

} // namespace amulet::pipeline

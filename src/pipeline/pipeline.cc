#include "pipeline/pipeline.hh"

#include "pipeline/stages.hh"

namespace amulet::pipeline
{

ProgramPlan
ProgramPlan::forProgram(unsigned programIndex, Rng prog_rng)
{
    ProgramPlan plan;
    plan.programIndex = programIndex;
    // Stream state first, then the fixed split order: gen, input,
    // mutate. Replays and journaled records depend on this order.
    plan.streamState = prog_rng.state();
    plan.genRng = prog_rng.split();
    plan.inputRng = prog_rng.split();
    plan.mutateRng = prog_rng.split();
    return plan;
}

ProgramPipeline
ProgramPipeline::standard()
{
    ProgramPipeline p;
    p.append(std::make_unique<TestGenStage>());
    p.append(std::make_unique<CTraceStage>());
    p.append(std::make_unique<FilterStage>());
    p.append(std::make_unique<ExecuteStage>());
    p.append(std::make_unique<AnalyzeStage>());
    p.append(std::make_unique<ValidateStage>());
    p.append(std::make_unique<RecordStage>());
    return p;
}

ProgramPipeline
ProgramPipeline::standardPrefix()
{
    ProgramPipeline p;
    p.append(std::make_unique<TestGenStage>());
    p.append(std::make_unique<CTraceStage>());
    p.append(std::make_unique<FilterStage>());
    return p;
}

ProgramPipeline
ProgramPipeline::standardSuffix()
{
    ProgramPipeline p;
    p.append(std::make_unique<ExecuteStage>());
    p.append(std::make_unique<AnalyzeStage>());
    p.append(std::make_unique<ValidateStage>());
    p.append(std::make_unique<RecordStage>());
    return p;
}

void
ProgramPipeline::append(std::unique_ptr<Stage> stage)
{
    stages_.push_back(std::move(stage));
}

void
ProgramPipeline::run(StageContext &ctx, ProgramPlan &plan) const
{
    for (const auto &stage : stages_) {
        const auto t0 = Clock::now();
        stage->run(ctx, plan);
        if (observer_)
            observer_(*stage, plan, secondsSince(t0));
        if (plan.halt)
            break;
    }
}

} // namespace amulet::pipeline

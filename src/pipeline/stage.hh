/**
 * @file
 * Staged per-program pipeline: stage interface and the typed state the
 * stages exchange.
 *
 * One test program flows through an ordered list of stages
 * (TestGen → CTrace → Filter → Execute → Analyze → Validate → Record),
 * each reading and extending one ProgramPlan. Stages are stateless —
 * everything a program accumulates lives in its plan, and everything the
 * stages share (config, executor backend, leakage model) comes in via
 * the StageContext — so a pipeline instance can be reused across
 * programs, stages can be reordered, skipped, or instrumented, and a
 * stage can later be dispatched to a remote or out-of-process backend by
 * shipping its plan.
 *
 * Determinism contract (inherited from src/runtime/): a plan's outcome
 * is a pure function of (config, program index, program RNG stream).
 * Stages must draw randomness only from the plan's pre-split streams and
 * touch the simulator (through the backend) only from the canonical
 * per-program starting
 * context.
 */

#ifndef AMULET_PIPELINE_STAGE_HH
#define AMULET_PIPELINE_STAGE_HH

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "contracts/leakage_model.hh"
#include "contracts/observation.hh"
#include "core/analyzer.hh"
#include "core/campaign.hh"
#include "executor/backend.hh"
#include "isa/program.hh"

namespace amulet::telemetry
{
class TelemetrySink;
}

namespace amulet::core
{
class InputBufferPool;
}

namespace amulet::pipeline
{

/** Campaign wall clock (detection timestamps, stage timings). */
using Clock = std::chrono::steady_clock;

/** Seconds elapsed since @p t0. */
inline double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Shared services a stage may use. The context is per-shard: one
 * executor backend and one model, never shared across workers. Stages
 * never see a concrete SimHarness — the backend decides whether the
 * simulator runs in this thread, on a dedicated simulation thread, or
 * in another process (src/executor/backend.hh).
 */
struct StageContext
{
    const core::CampaignConfig &cfg;
    executor::SimBackend &backend;
    contracts::LeakageModel &model;
    /** Post-boot predictor state every program starts from. */
    const executor::UarchContext &canonicalCtx;
    /** Campaign start; detection timestamps are measured against it. */
    Clock::time_point t0;
    /** The owning shard's telemetry sink (src/telemetry/), or null when
     *  the campaign runs without telemetry. Stage wall times are
     *  recorded by the pipeline observer, not by stages; the handle is
     *  here for stages that want finer-grained custom metrics.
     *  Observability only — stages must never branch on it. */
    telemetry::TelemetrySink *telemetry = nullptr;
    /** Shard-lived recycler for input sandbox buffers (or null). Purely
     *  an allocation optimization: generated inputs are byte-identical
     *  with or without it (src/core/input_gen.hh). */
    core::InputBufferPool *inputPool = nullptr;
};

/** A candidate pair that survived context-swap validation. */
struct ConfirmedPair
{
    std::size_t a;
    std::size_t b;
    double detectSeconds; ///< wall time since campaign start
};

/**
 * Everything one test program accumulates on its way through the
 * pipeline. Vectors indexed "like inputs" keep one slot per generated
 * input; slots of inputs the FilterStage dropped stay default-
 * constructed and are never read downstream.
 */
struct ProgramPlan
{
    unsigned programIndex = 0;
    /** Pre-split stream state, captured before any draw: with it, a
     *  journaled record can re-derive this whole program offline. */
    Rng::State streamState{};
    Rng genRng{0};    ///< program generation draws
    Rng inputRng{0};  ///< input generation draws
    Rng mutateRng{0}; ///< register-mutation draws

    // TestGenStage
    isa::Program program;
    std::optional<isa::FlatProgram> flat;

    // CTraceStage
    std::vector<arch::Input> inputs;
    std::vector<contracts::CTrace> ctraces;

    // FilterStage
    core::EquivalenceClasses classes;
    /** Classes to execute, in execution order: effective classes first
     *  (class order), then — only with filtering off — the singleton
     *  classes whose runs nothing downstream can use. */
    std::vector<std::size_t> executeClasses;

    // ExecuteStage (indexed like inputs)
    std::vector<executor::UTrace> traces;
    std::vector<executor::UarchContext> contexts; ///< pre-run context
    std::vector<std::vector<executor::UTrace>> extraTraces;
    /** Class batches already submitted to the backend but not yet
     *  collected (one ticket per entry of executeClasses, in order).
     *  Filled by ExecuteStage::submit when a pipelined driver dispatches
     *  the simulator work early; drained by ExecuteStage::run. */
    std::vector<executor::SimBackend::Ticket> batchTickets;
    bool batchesSubmitted = false;

    // AnalyzeStage / ValidateStage
    core::AnalysisResult analysis;
    std::vector<ConfirmedPair> confirmed;

    /** The product: what this program contributes to campaign stats. */
    core::ProgramOutcome outcome;

    /** Set by a stage to stop the pipeline after it returns (program
     *  skipped or aborted; the outcome is already final). */
    bool halt = false;

    /** Plan for one program: captures the stream state, then pre-splits
     *  the per-purpose streams in the fixed order the stages expect. */
    static ProgramPlan forProgram(unsigned programIndex, Rng prog_rng);
};

/** One pipeline stage. Implementations are stateless and thread-
 *  confined: a stage object may be shared by the programs of one shard
 *  but never across shards. */
class Stage
{
  public:
    virtual ~Stage() = default;

    /** Stable stage name (instrumentation, logs). */
    virtual const char *name() const = 0;

    /** Advance @p plan. Set plan.halt to stop the pipeline. */
    virtual void run(StageContext &ctx, ProgramPlan &plan) = 0;
};

} // namespace amulet::pipeline

#endif // AMULET_PIPELINE_STAGE_HH

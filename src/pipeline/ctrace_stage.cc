#include "pipeline/stages.hh"

#include <optional>
#include <utility>

#include "core/input_gen.hh"
#include "isa/reg.hh"

namespace amulet::pipeline
{

void
CTraceStage::run(StageContext &ctx, ProgramPlan &plan)
{
    const auto t0 = Clock::now();
    const core::CampaignConfig &cfg = ctx.cfg;
    const isa::FlatProgram &fp = *plan.flat;
    core::InputGenerator input_gen(cfg.inputs, plan.inputRng);

    std::uint64_t next_id = std::uint64_t{plan.programIndex} * 10000;
    for (unsigned b = 0; b < cfg.baseInputsPerProgram; ++b) {
        arch::Input base = input_gen.generate(next_id++);
        const contracts::CTrace base_ct =
            ctx.model.collect(fp, base, cfg.harness.map);
        const auto read_offsets =
            ctx.model.archReadOffsets(fp, base, cfg.harness.map);

        // Contract-dead registers: registers whose value does not
        // influence the contract trace. Siblings may mutate them
        // (that is how register-secret leaks such as SpecLFB UV6
        // become reachable) — unless the contract exposes initial
        // register values (ARCH-SEQ), in which case inputs of one
        // class keep identical registers, as in the paper.
        std::vector<unsigned> dead_regs;
        if (!cfg.contract.exposeInitialRegs && cfg.regMutationPct > 0) {
            for (unsigned r = 0; r < isa::kNumRegs; ++r) {
                if (r == isa::regIndex(isa::kSandboxBaseReg) ||
                    r == isa::regIndex(isa::Reg::Rsp)) {
                    continue;
                }
                arch::Input probe = base;
                probe.regs[r] ^= 0x5a5a5a5a5a5aULL;
                if (ctx.model.collect(fp, probe, cfg.harness.map) ==
                    base_ct) {
                    dead_regs.push_back(r);
                }
            }
        }

        plan.inputs.push_back(base);
        plan.ctraces.push_back(base_ct);
        for (unsigned s = 0; s < cfg.siblingsPerBase; ++s) {
            arch::Input sib =
                input_gen.sibling(base, read_offsets, next_id++);
            // The trace that confirmed a kept mutation IS the sibling's
            // contract trace; collecting it again would double the
            // model cost of every mutated sibling.
            std::optional<contracts::CTrace> confirmed_ct;
            if (!dead_regs.empty() &&
                plan.mutateRng.chance(cfg.regMutationPct, 100)) {
                arch::Input mutated = sib;
                for (unsigned r : dead_regs) {
                    if (plan.mutateRng.chance(1, 2))
                        mutated.regs[r] = plan.mutateRng.next();
                }
                // Joint mutation can still interact (e.g. two dead
                // registers combining into a live value); keep the
                // mutation only if the model confirms equivalence.
                contracts::CTrace mut_ct =
                    ctx.model.collect(fp, mutated, cfg.harness.map);
                if (mut_ct == base_ct) {
                    sib = std::move(mutated);
                    confirmed_ct = std::move(mut_ct);
                }
            }
            contracts::CTrace sib_ct =
                confirmed_ct
                    ? std::move(*confirmed_ct)
                    : ctx.model.collect(fp, sib, cfg.harness.map);
            plan.inputs.push_back(std::move(sib));
            plan.ctraces.push_back(std::move(sib_ct));
        }
    }
    plan.outcome.ctraceSec += secondsSince(t0);
}

} // namespace amulet::pipeline
